/**
 * @file
 * Partitions and mailboxes: the sharding primitives of the
 * deterministic parallel engine (see parallel_engine.hh).
 *
 * A Partition owns a private EventQueue and a private Random stream;
 * during one barrier epoch it is executed by exactly one worker
 * thread, so everything bound to a partition runs single-threaded.
 * Cross-partition communication goes through Mailbox: the source
 * partition posts closures timestamped at least one lookahead window
 * into the future, and the engine injects them into the destination
 * queues at the next epoch barrier in a deterministic merge order —
 * sorted by (tick, priority, seq, source partition id) — so the
 * resulting schedule is independent of thread count and interleaving.
 *
 * The thread-local ExecContext lets objects constructed *while a
 * partition is executing* (e.g. a TCP connection spun up by an
 * accept) bind to the creating partition's queue and RNG instead of
 * the simulation-global ones.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace qpip::sim {

class ParallelEngine;

/**
 * Which partition (if any) the current thread is executing: the event
 * queue and RNG stream that SimObjects constructed on this thread
 * bind to.
 */
struct ExecContext
{
    EventQueue *eq = nullptr;
    Random *rng = nullptr;
};

namespace detail {

/** The calling thread's execution context (nullptr outside epochs). */
ExecContext *currentExecContext();
void setCurrentExecContext(ExecContext *ctx);

} // namespace detail

/** RAII installer for the thread-local ExecContext. */
class ExecContextScope
{
  public:
    explicit ExecContextScope(ExecContext *ctx)
        : prev_(detail::currentExecContext())
    {
        detail::setCurrentExecContext(ctx);
    }

    ~ExecContextScope() { detail::setCurrentExecContext(prev_); }

    ExecContextScope(const ExecContextScope &) = delete;
    ExecContextScope &operator=(const ExecContextScope &) = delete;

  private:
    ExecContext *prev_;
};

/**
 * One shard of the simulation: a private event-queue slab plus a
 * private RNG stream.
 */
class Partition
{
  public:
    Partition(std::uint32_t id, std::string name, std::uint64_t seed);

    Partition(const Partition &) = delete;
    Partition &operator=(const Partition &) = delete;

    std::uint32_t id() const { return id_; }
    const std::string &name() const { return name_; }

    EventQueue &eventQueue() { return eq_; }
    Random &rng() { return rng_; }
    ExecContext &execContext() { return ctx_; }

    /** Next mailbox message sequence number (deterministic). */
    std::uint64_t nextMailSeq() { return mailSeq_++; }

  private:
    std::uint32_t id_;
    std::string name_;
    EventQueue eq_;
    Random rng_;
    ExecContext ctx_;
    std::uint64_t mailSeq_ = 0;
};

/**
 * A one-way cross-partition channel. Only the source partition's
 * executing thread may post; only the engine (at the epoch barrier,
 * all workers parked) drains. Posted timestamps must be at or beyond
 * the current epoch horizon — that is exactly the conservative
 * lookahead guarantee the engine's synchronization window rests on,
 * so a violation is a simulator bug and panics.
 */
class Mailbox
{
  public:
    Mailbox(Partition &src, Partition &dst) : src_(src), dst_(dst) {}

    Mailbox(const Mailbox &) = delete;
    Mailbox &operator=(const Mailbox &) = delete;

    Partition &src() { return src_; }
    Partition &dst() { return dst_; }

    /** Post a closure for delivery at @p when in the destination. */
    template <typename F>
    void
    post(Tick when, int priority, F &&fn)
    {
        if (horizon_ != nullptr && when < *horizon_) [[unlikely]] {
            panic("Mailbox %s->%s: post at %llu violates the epoch "
                  "horizon %llu (lookahead too large?)",
                  src_.name().c_str(), dst_.name().c_str(),
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(*horizon_));
        }
        msgs_.push_back(Msg{when, priority, src_.nextMailSeq(),
                            std::function<void()>(std::forward<F>(fn))});
    }

  private:
    friend class ParallelEngine;

    struct Msg
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    Partition &src_;
    Partition &dst_;
    /** Installed by the engine: the running epoch's horizon. */
    const Tick *horizon_ = nullptr;
    std::vector<Msg> msgs_;
};

} // namespace qpip::sim
