/**
 * @file
 * Partitions and mailboxes: the sharding primitives of the
 * deterministic parallel engine (see parallel_engine.hh).
 *
 * A Partition owns a private EventQueue and a private Random stream;
 * during one barrier epoch it is executed by exactly one worker
 * thread, so everything bound to a partition runs single-threaded.
 * Cross-partition communication goes through Mailbox: the source
 * partition appends closures to the edge's local batch buffer, the
 * worker that ran the source sorts the batch while still inside the
 * parallel region, and the engine merges all batches at the epoch
 * barrier in one deterministic (tick, priority, seq, source partition
 * id) pass — so the resulting schedule is independent of thread count
 * and interleaving.
 *
 * Every edge carries its own lookahead (the minimum delivery latency
 * of that link), and every partition carries the horizon of the epoch
 * it is currently running. A post below the *destination's* horizon
 * means the destination may already have executed past the delivery
 * tick — a causality violation — and panics with enough context to
 * debug at thousand-host scale.
 *
 * The thread-local ExecContext lets objects constructed *while a
 * partition is executing* (e.g. a TCP connection spun up by an
 * accept) bind to the creating partition's queue and RNG instead of
 * the simulation-global ones.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace qpip::sim {

class Mailbox;
class ParallelEngine;

/**
 * Which partition (if any) the current thread is executing: the event
 * queue and RNG stream that SimObjects constructed on this thread
 * bind to.
 */
struct ExecContext
{
    EventQueue *eq = nullptr;
    Random *rng = nullptr;
};

namespace detail {

/** The calling thread's execution context (nullptr outside epochs). */
ExecContext *currentExecContext();
void setCurrentExecContext(ExecContext *ctx);

} // namespace detail

/** RAII installer for the thread-local ExecContext. */
class ExecContextScope
{
  public:
    explicit ExecContextScope(ExecContext *ctx)
        : prev_(detail::currentExecContext())
    {
        detail::setCurrentExecContext(ctx);
    }

    ~ExecContextScope() { detail::setCurrentExecContext(prev_); }

    ExecContextScope(const ExecContextScope &) = delete;
    ExecContextScope &operator=(const ExecContextScope &) = delete;

  private:
    ExecContext *prev_;
};

/**
 * One shard of the simulation: a private event-queue slab plus a
 * private RNG stream.
 */
class Partition
{
  public:
    Partition(std::uint32_t id, std::string name, std::uint64_t seed);

    Partition(const Partition &) = delete;
    Partition &operator=(const Partition &) = delete;

    std::uint32_t id() const { return id_; }
    const std::string &name() const { return name_; }

    EventQueue &eventQueue() { return eq_; }
    Random &rng() { return rng_; }
    ExecContext &execContext() { return ctx_; }

    /** Next mailbox message sequence number (deterministic). */
    std::uint64_t nextMailSeq() { return mailSeq_++; }

    /**
     * This partition's safe frontier (engine-set at each barrier):
     * the monotone maximum of every epoch bound the engine has ever
     * computed for it. The partition's clock never exceeds it, no
     * cross-partition message may be addressed below it, and each
     * epoch runs it to min(frontier, run deadline). Monotone on
     * purpose: the per-epoch bound itself can dip (the conservative
     * floor of a neighbor drops when an injection wakes the neighbor
     * early), but a bound once proven stays proven — every future
     * post still arrives at or beyond it.
     */
    Tick epochHorizon() const { return horizon_; }

  private:
    friend class Mailbox;
    friend class ParallelEngine;

    std::uint32_t id_;
    std::string name_;
    EventQueue eq_;
    Random rng_;
    ExecContext ctx_;
    std::uint64_t mailSeq_ = 0;
    /** Written by the engine between epochs (mutex-ordered). */
    Tick horizon_ = 0;
    /** This epoch's run bound: min(horizon_, run deadline). */
    Tick runTo_ = 0;
    /**
     * Outgoing mailboxes with pending posts. Same ownership rule as
     * the batch buffers themselves: touched only by this partition's
     * executing worker during an epoch and by the engine's barrier
     * (mutex-ordered) between them. Lets the barrier visit only the
     * edges that were actually posted to instead of scanning every
     * mailbox in the fabric.
     */
    std::vector<Mailbox *> dirtyOut_;
};

/**
 * A one-way cross-partition channel. Only the source partition's
 * executing thread may post; posts accumulate in a local batch buffer
 * with no synchronization. The worker that ran the source sorts the
 * batch, and the engine merges all batches at the epoch barrier (all
 * workers parked). Posted timestamps must be at or beyond the
 * *destination's* epoch horizon — that is exactly the conservative
 * lookahead guarantee the engine's synchronization window rests on,
 * so a violation is a simulator bug and panics.
 */
class Mailbox
{
  public:
    Mailbox(Partition &src, Partition &dst) : src_(src), dst_(dst) {}

    Mailbox(const Mailbox &) = delete;
    Mailbox &operator=(const Mailbox &) = delete;

    Partition &src() { return src_; }
    Partition &dst() { return dst_; }

    /**
     * Declare this edge's lookahead: a lower bound on the delivery
     * latency of every message posted through it (for a link edge,
     * the link's propagation delay). Edges that never declare one
     * inherit the engine's global lookahead. When several physical
     * links share the edge, declare the minimum. @pre l >= 1 tick.
     */
    void
    setLookahead(Tick l)
    {
        if (l == 0)
            panic("Mailbox %s->%s: edge lookahead must be at least "
                  "one tick",
                  src_.name().c_str(), dst_.name().c_str());
        lookahead_ = l;
    }

    /** The declared edge lookahead (maxTick until resolved). */
    Tick lookahead() const { return lookahead_; }

    /** Post a closure for delivery at @p when in the destination. */
    template <typename F>
    void
    post(Tick when, int priority, F &&fn)
    {
        if (when < dst_.epochHorizon()) [[unlikely]]
            panicBelowHorizon(when);
        if (msgs_.empty())
            src_.dirtyOut_.push_back(this);
        msgs_.push_back(Msg{when, priority, src_.nextMailSeq(),
                            std::function<void()>(std::forward<F>(fn))});
    }

  private:
    friend class ParallelEngine;

    struct Msg
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    /**
     * Sort the pending batch by (when, priority, seq) — a strict
     * total order, seq streams are per-source. Called by the worker
     * that ran the source partition so the barrier merge only pays
     * for merging, and again defensively (O(n) is_sorted check) at
     * injection for batches posted outside an epoch.
     */
    void sortBatch();

    [[noreturn]] void panicBelowHorizon(Tick when) const;

    Partition &src_;
    Partition &dst_;
    /** This edge's lookahead; maxTick = inherit the engine global. */
    Tick lookahead_ = maxTick;
    std::vector<Msg> msgs_;
};

} // namespace qpip::sim
