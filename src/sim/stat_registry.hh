/**
 * @file
 * Hierarchical statistics registry: every Counter/SampleStat/Histogram
 * in the simulation registers under a dotted path (e.g.
 * "host0.qnic.fw.stage.getWr") so tests, benches and reports can
 * enumerate, pattern-match and dump them uniformly instead of
 * hand-plumbing struct fields. The registry stores non-owning pointers;
 * StatGroup ties registration lifetime to the owning object so paths
 * never dangle.
 */

#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace qpip::sim {

/**
 * Match @p path against a glob @p pattern where '*' matches any run of
 * characters (including dots) and '?' matches exactly one.
 */
bool statPatternMatch(const std::string &pattern,
                      const std::string &path);

/**
 * The registry. One per Simulation; ordered by path so enumeration and
 * JSON dumps are deterministic.
 */
class StatRegistry
{
  public:
    void add(const std::string &path, const Counter &c);
    void add(const std::string &path, const SampleStat &s);
    void add(const std::string &path, const Histogram &h);

    /** Unregister one path (no-op when absent). */
    void remove(const std::string &path);

    bool contains(const std::string &path) const;
    std::size_t size() const;

    /** Typed lookup; nullptr when absent or a different kind. */
    const Counter *counter(const std::string &path) const;
    const SampleStat *sample(const std::string &path) const;
    const Histogram *histogram(const std::string &path) const;

    /** Counter value, or 0 when absent (benches' common case). */
    std::uint64_t counterValue(const std::string &path) const;

    /** All registered paths matching @p pattern, sorted. */
    std::vector<std::string>
    match(const std::string &pattern = "*") const;

    /**
     * JSON dump of every stat matching @p pattern: one flat object
     * keyed by path, each value an object carrying "kind" plus the
     * kind's fields. Deterministic (sorted, fixed number formatting).
     */
    std::string jsonDump(const std::string &pattern = "*") const;

  private:
    struct Entry
    {
        const Counter *counter = nullptr;
        const SampleStat *sample = nullptr;
        const Histogram *histogram = nullptr;
    };

    void insert(const std::string &path, Entry entry);

    /**
     * Registration happens at runtime (per-connection TCP stats), so
     * under a parallel engine concurrent partitions may add/remove
     * paths; the map itself needs a lock. Entry *values* are written
     * only by their single owning partition and read after runs.
     */
    mutable std::mutex m_;
    std::map<std::string, Entry> entries_;
};

/**
 * A set of registrations sharing a prefix whose lifetime is bound to
 * the owning object: the destructor unregisters every path added
 * through the group.
 */
class StatGroup
{
  public:
    StatGroup() = default;
    ~StatGroup() { clear(); }

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Bind to @p registry with @p prefix (must be unbound). */
    void init(StatRegistry &registry, std::string prefix);

    bool bound() const { return registry_ != nullptr; }
    const std::string &prefix() const { return prefix_; }

    /** Register @p stat as "<prefix>.<leaf>". @pre bound(). */
    template <typename Stat>
    void
    add(const std::string &leaf, const Stat &stat)
    {
        registry_->add(path(leaf), stat);
        paths_.push_back(path(leaf));
    }

    /** Unregister everything and unbind. */
    void clear();

  private:
    std::string
    path(const std::string &leaf) const
    {
        return prefix_.empty() ? leaf : prefix_ + "." + leaf;
    }

    StatRegistry *registry_ = nullptr;
    std::string prefix_;
    std::vector<std::string> paths_;
};

} // namespace qpip::sim
