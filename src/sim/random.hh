/**
 * @file
 * Deterministic pseudo-random numbers for the simulation.
 *
 * xoshiro256** seeded through splitmix64: fast, high quality, and —
 * unlike std::mt19937 + std::distributions — bit-for-bit reproducible
 * across standard library implementations, which the regression tests
 * rely on.
 */

#pragma once

#include <cstdint>

namespace qpip::sim {

/**
 * A small deterministic PRNG (xoshiro256**).
 */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Re-seed the generator. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Bernoulli trial with probability @p p of returning true. */
    bool bernoulli(double p);

    /** Exponentially distributed double with the given mean. */
    double exponential(double mean);

  private:
    std::uint64_t s_[4];
};

} // namespace qpip::sim
