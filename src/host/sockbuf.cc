#include "host/sockbuf.hh"

#include <algorithm>

namespace qpip::host {

void
SockBuf::append(std::span<const std::uint8_t> data)
{
    fifo_.append(data);
}

std::vector<std::uint8_t>
SockBuf::read(std::size_t max_bytes)
{
    const std::size_t n = std::min(max_bytes, fifo_.size());
    std::vector<std::uint8_t> out(n);
    fifo_.copyOut(0, n, out.data());
    fifo_.drop(n);
    return out;
}

} // namespace qpip::host
