#include "host/host_stack.hh"

#include "inet/ipv4.hh"
#include "inet/ipv6.hh"
#include "inet/udp.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace qpip::host {

using inet::IpDatagram;
using inet::IpProto;

HostStack::HostStack(sim::Simulation &sim, std::string name, HostOS &os)
    : SimObject(sim, std::move(name)), os_(os)
{
    regStat("pktsOut", pktsOut);
    regStat("pktsIn", pktsIn);
    regStat("badPktsIn", badPktsIn);
    regStat("noPortDrops", noPortDrops);
    regStat("loopbackPkts", loopbackPkts);
    regStat("reass6.fragmentsIn", reass6_.fragmentsIn);
    regStat("reass6.reassembled", reass6_.reassembled);
    regStat("reass6.expired", reass6_.expired);
}

HostStack::~HostStack() = default;

void
HostStack::attachNic(HostNicDriver &nic)
{
    nic_ = &nic;
}

void
HostStack::addAddress(const inet::InetAddr &addr)
{
    localAddrs_.insert(addr);
}

bool
HostStack::isLocal(const inet::InetAddr &addr) const
{
    return localAddrs_.count(addr) != 0;
}

inet::TcpConfig
HostStack::defaultTcpConfig() const
{
    inet::TcpConfig cfg;
    const std::uint32_t mtu = nic_ ? nic_->mtu() : 1500;
    // Conservative: leave room for a 40/60-byte network header plus
    // TCP header with timestamps.
    cfg.mss = mtu - 60 - 12;
    cfg.tsGranularity = sim::oneMs; // Linux jiffies-ish
    cfg.minRto = 200 * sim::oneMs;  // Linux 2.4 TCP_RTO_MIN
    cfg.delAckTimeout = 40 * sim::oneMs;
    cfg.windowScale = 2;
    return cfg;
}

// ---------------------------------------------------------------------
// Socket API
// ---------------------------------------------------------------------

std::shared_ptr<TcpSocket>
HostStack::tcpConnect(const inet::SockAddr &local,
                      const inet::SockAddr &remote,
                      const inet::TcpConfig &cfg, TcpSocket::ConnectCb cb,
                      std::size_t rcv_buf)
{
    auto sock = std::make_shared<TcpSocket>(*this, cfg, rcv_buf);
    sock->connectCb_ = std::move(cb);
    inet::FourTuple t{local, remote};
    registerConn(t, sock->conn_.get(), sock);
    // connect(2): syscall + handshake initiation.
    os_.defer(costs().syscallOverhead + costs().sockSendBase,
              [sock, local, remote] {
                  sock->conn_->openActive(local, remote);
              });
    return sock;
}

void
HostStack::tcpListen(std::uint16_t port, const inet::TcpConfig &cfg,
                     AcceptCb on_accept, std::size_t rcv_buf)
{
    auto listener = std::make_unique<Listener>();
    listener->cfg = cfg;
    listener->onAccept = std::move(on_accept);
    listener->rcvBuf = rcv_buf;
    tcp_.insertListener(port, listener.get());
    listeners_[port] = std::move(listener);
}

void
HostStack::tcpUnlisten(std::uint16_t port)
{
    tcp_.eraseListener(port);
    listeners_.erase(port);
}

std::shared_ptr<UdpSocket>
HostStack::udpBind(const inet::SockAddr &local)
{
    if (udpPorts_.count(local.port))
        sim::fatal("udp port %u already bound", local.port);
    auto sock = std::make_shared<UdpSocket>(*this, local);
    udpPorts_[local.port] = sock.get();
    return sock;
}

void
HostStack::udpUnbind(std::uint16_t port)
{
    udpPorts_.erase(port);
}

void
HostStack::registerConn(const inet::FourTuple &t,
                        inet::TcpConnection *conn,
                        std::shared_ptr<TcpSocket> sock)
{
    tcp_.insertConn(t, conn);
    socketsByConn_[conn] = std::move(sock);
    if (!conn->stats().registered()) {
        conn->stats().registerIn(
            statRegistry(),
            name() + ".tcp.conn" + std::to_string(connSeq_++));
    }
}

// ---------------------------------------------------------------------
// Transmit path
// ---------------------------------------------------------------------

void
HostStack::tcpOutput(IpDatagram &&dgram, const inet::TcpSegMeta &meta)
{
    sim::Cycles c = costs().tcpOutputPerSeg + costs().ipPerPacket +
                    costs().driverTxPerPkt;
    // Retransmissions re-checksum data already resident in the kernel
    // (the original checksum was folded into the user copy).
    if (meta.retransmit && nic_ && !nic_->checksumOffload()) {
        c += HostOS::byteCycles(costs().copyPerByte - 1.0,
                                meta.payloadBytes);
    }
    os_.defer(c, [this, d = std::move(dgram)]() mutable {
        sendToWire(std::move(d));
    });
}

void
HostStack::udpOutput(IpDatagram &&dgram)
{
    const sim::Cycles c = costs().udpOutputPerDgram +
                          costs().ipPerPacket + costs().driverTxPerPkt;
    os_.defer(c, [this, d = std::move(dgram)]() mutable {
        sendToWire(std::move(d));
    });
}

void
HostStack::sendToWire(IpDatagram dgram)
{
    if (isLocal(dgram.dst)) {
        // Loopback: straight back into ipInput with the receive-side
        // protocol charges (no driver, no interrupt) — exactly the
        // path the paper uses to bound host overhead in Table 1.
        loopbackPkts.inc();
        ipInput(std::move(dgram));
        return;
    }
    if (nic_ == nullptr) {
        sim::warn("%s: no NIC attached, dropping", name().c_str());
        return;
    }
    auto route = routes_.lookup(dgram.dst);
    if (!route) {
        sim::warn("%s: no route to %s", name().c_str(),
                  dgram.dst.toString().c_str());
        return;
    }

    const std::uint32_t mtu = nic_->mtu();
    pktsOut.inc();
    if (dgram.dst.isV6()) {
        // v6: end-to-end fragmentation when needed.
        auto frames = fragmentIpv6(dgram, mtu, fragIdent_++);
        for (std::size_t i = 0; i < frames.size(); ++i) {
            auto pkt = net::makePacket();
            pkt->src = nic_->nodeId();
            pkt->dst = *route;
            pkt->proto = net::NetProto::Ipv6;
            pkt->data = std::move(frames[i]);
            if (i > 0)
                os_.charge(costs().ipPerPacket); // per extra fragment
            nic_->transmit(std::move(pkt));
        }
    } else {
        if (dgram.payload.size() + inet::ipv4HeaderBytes > mtu) {
            sim::warn("%s: v4 datagram exceeds MTU, dropping",
                      name().c_str());
            return;
        }
        auto pkt = net::makePacket();
        pkt->src = nic_->nodeId();
        pkt->dst = *route;
        pkt->proto = net::NetProto::Ipv4;
        pkt->data = serializeIpv4(dgram, identCounter_++);
        nic_->transmit(std::move(pkt));
    }
}

// ---------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------

void
HostStack::nicReceive(net::PacketPtr pkt)
{
    pktsIn.inc();
    os_.defer(costs().driverRxPerPkt, [this, pkt] {
        processRx(pkt);
    });
}

void
HostStack::processRx(net::PacketPtr pkt)
{
    os_.charge(costs().ipPerPacket);
    if (pkt->proto == net::NetProto::Ipv4) {
        IpDatagram dgram;
        if (!parseIpv4(pkt->data, dgram)) {
            badPktsIn.inc();
            return;
        }
        ipInput(std::move(dgram));
        return;
    }
    if (pkt->proto == net::NetProto::Ipv6) {
        inet::Ipv6Packet v6;
        if (!parseIpv6(pkt->data, v6)) {
            badPktsIn.inc();
            return;
        }
        reass6_.expire(curTick());
        auto dgram = reass6_.offer(v6, curTick());
        if (dgram)
            ipInput(std::move(*dgram));
        return;
    }
    badPktsIn.inc();
}

void
HostStack::ipInput(IpDatagram dgram)
{
    switch (dgram.proto) {
      case IpProto::Tcp:
        deliverTcp(dgram);
        break;
      case IpProto::Udp:
        deliverUdp(dgram);
        break;
      default:
        badPktsIn.inc();
        break;
    }
}

void
HostStack::deliverTcp(IpDatagram &dgram)
{
    inet::TcpHeader hdr;
    std::span<const std::uint8_t> payload;
    if (!parseTcp(dgram.src, dgram.dst, dgram.payload, hdr, payload)) {
        badPktsIn.inc();
        return;
    }

    sim::Cycles c = costs().tcpInputPerSeg;
    if (nic_ && !nic_->checksumOffload()) {
        // The rx checksum pass over the payload.
        c += HostOS::byteCycles(1.0, payload.size());
    }
    os_.charge(c);

    inet::FourTuple t;
    t.local = inet::SockAddr{dgram.dst, hdr.dstPort};
    t.remote = inet::SockAddr{dgram.src, hdr.srcPort};
    if (auto *conn = tcp_.lookupConn(t)) {
        conn->segmentArrived(hdr, payload);
        return;
    }
    // New connection?
    if (hdr.has(inet::tcpflags::syn) && !hdr.has(inet::tcpflags::ack)) {
        if (auto *listener = tcp_.lookupListener(hdr.dstPort)) {
            auto cfg = listener->cfg;
            auto sock = std::make_shared<TcpSocket>(*this, cfg,
                                                    listener->rcvBuf);
            auto *conn = sock->conn_.get();
            registerConn(t, conn, sock);
            // Stash the accept callback for onConnected.
            sock->connectCb_ = [this, listener,
                                sock](bool ok) {
                if (ok && listener->onAccept)
                    listener->onAccept(sock);
            };
            conn->openPassive(t.local, t.remote, hdr);
            return;
        }
    }
    noPortDrops.inc();
    // RFC 793: RST for segments to nonexistent connections.
    if (!hdr.has(inet::tcpflags::rst)) {
        inet::TcpHeader rst;
        rst.srcPort = hdr.dstPort;
        rst.dstPort = hdr.srcPort;
        rst.flags = inet::tcpflags::rst | inet::tcpflags::ack;
        rst.seq = hdr.has(inet::tcpflags::ack) ? hdr.ack : 0;
        rst.ack = hdr.seq + static_cast<std::uint32_t>(payload.size()) +
                  (hdr.has(inet::tcpflags::syn) ? 1 : 0);
        IpDatagram out;
        out.src = dgram.dst;
        out.dst = dgram.src;
        out.proto = IpProto::Tcp;
        out.payload = serializeTcp(out.src, out.dst, rst, {});
        os_.defer(costs().tcpOutputPerSeg + costs().driverTxPerPkt,
                  [this, d = std::move(out)]() mutable {
                      sendToWire(std::move(d));
                  });
    }
}

void
HostStack::deliverUdp(IpDatagram &dgram)
{
    inet::UdpHeader hdr;
    std::span<const std::uint8_t> payload;
    if (!parseUdp(dgram.src, dgram.dst, dgram.payload, hdr, payload)) {
        badPktsIn.inc();
        return;
    }
    sim::Cycles c = costs().udpInputPerDgram;
    if (nic_ && !nic_->checksumOffload())
        c += HostOS::byteCycles(1.0, payload.size());
    os_.charge(c);

    auto it = udpPorts_.find(hdr.dstPort);
    if (it == udpPorts_.end()) {
        noPortDrops.inc();
        return;
    }
    UdpSocket::Datagram d;
    d.data.assign(payload.begin(), payload.end());
    d.from = inet::SockAddr{dgram.src, hdr.srcPort};
    it->second->deliver(std::move(d));
}

// ---------------------------------------------------------------------
// TcpEnv
// ---------------------------------------------------------------------

sim::Tick
HostStack::now()
{
    return curTick();
}

sim::EventHandle
HostStack::scheduleTimer(sim::Tick delay, std::function<void()> fn)
{
    return os_.timer(delay, std::move(fn));
}

std::uint32_t
HostStack::randomIss()
{
    return static_cast<std::uint32_t>(rng().next());
}

void
HostStack::connectionClosed(inet::TcpConnection &conn)
{
    tcp_.eraseConn(conn.tuple());
    // Release the stack's reference once the current callback chain
    // unwinds; the application may still hold the socket.
    auto *key = &conn;
    schedule(curTick(), [this, key] { socketsByConn_.erase(key); });
}

sim::Tracer *
HostStack::tracer()
{
    return &SimObject::tracer();
}

} // namespace qpip::host
