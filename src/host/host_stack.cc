#include "host/host_stack.hh"

#include "inet/tcp_header.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace qpip::host {

using inet::IpDatagram;
using inet::IpProto;

HostStack::HostStack(sim::Simulation &sim, std::string name, HostOS &os)
    : SimObject(sim, std::move(name)), os_(os), inet_(*this),
      pktsOut(inet_.pktsOut), badPktsIn(inet_.badFrames),
      noPortDrops(inet_.noMatchDrops), loopbackPkts(inet_.loopbackPkts)
{
    regStat("pktsOut", pktsOut);
    regStat("pktsIn", pktsIn);
    regStat("badPktsIn", badPktsIn);
    regStat("noPortDrops", noPortDrops);
    regStat("loopbackPkts", loopbackPkts);
    regStat("msgSizeDrops", inet_.msgSizeDrops);
    regStat("reass6.fragmentsIn", inet_.reassembler().fragmentsIn);
    regStat("reass6.reassembled", inet_.reassembler().reassembled);
    regStat("reass6.expired", inet_.reassembler().expired);
}

HostStack::~HostStack() = default;

void
HostStack::attachNic(HostNicDriver &nic)
{
    nics_.push_back(&nic);
}

void
HostStack::setEgress(net::NodeId dst_node, HostNicDriver &nic)
{
    egress_[dst_node] = &nic;
}

HostNicDriver *
HostStack::egressFor(net::NodeId dst_node) const
{
    const auto it = egress_.find(dst_node);
    if (it != egress_.end())
        return it->second;
    return primaryNic();
}

void
HostStack::addAddress(const inet::InetAddr &addr)
{
    inet_.addLocalAddress(addr);
}

bool
HostStack::isLocal(const inet::InetAddr &addr) const
{
    return inet_.isLocal(addr);
}

inet::TcpConfig
HostStack::defaultTcpConfig() const
{
    inet::TcpConfig cfg;
    const HostNicDriver *nic = primaryNic();
    const std::uint32_t mtu = nic ? nic->mtu() : 1500;
    // Conservative: leave room for a 40/60-byte network header plus
    // TCP header with timestamps.
    cfg.mss = mtu - 60 - 12;
    cfg.tsGranularity = sim::oneMs; // Linux jiffies-ish
    cfg.minRto = 200 * sim::oneMs;  // Linux 2.4 TCP_RTO_MIN
    cfg.delAckTimeout = 40 * sim::oneMs;
    cfg.windowScale = 2;
    return cfg;
}

// ---------------------------------------------------------------------
// Socket API
// ---------------------------------------------------------------------

std::shared_ptr<TcpSocket>
HostStack::tcpConnect(const inet::SockAddr &local,
                      const inet::SockAddr &remote,
                      const inet::TcpConfig &cfg, TcpSocket::ConnectCb cb,
                      std::size_t rcv_buf)
{
    auto sock = std::make_shared<TcpSocket>(*this, cfg, rcv_buf);
    sock->connectCb_ = std::move(cb);
    inet::FourTuple t{local, remote};
    registerConn(t, sock->conn_.get(), sock);
    // connect(2): syscall + handshake initiation.
    os_.defer(costs().syscallOverhead + costs().sockSendBase,
              [sock, local, remote] {
                  sock->conn_->openActive(local, remote);
              });
    return sock;
}

void
HostStack::tcpListen(std::uint16_t port, const inet::TcpConfig &cfg,
                     AcceptCb on_accept, std::size_t rcv_buf)
{
    auto listener = std::make_unique<Listener>();
    listener->cfg = cfg;
    listener->onAccept = std::move(on_accept);
    listener->rcvBuf = rcv_buf;
    listeners_[port] = std::move(listener);
}

void
HostStack::tcpUnlisten(std::uint16_t port)
{
    listeners_.erase(port);
}

std::shared_ptr<UdpSocket>
HostStack::udpBind(const inet::SockAddr &local)
{
    auto sock = std::make_shared<UdpSocket>(*this, local);
    if (!inet_.bindUdp(local.port, sock.get()))
        sim::fatal("udp port %u already bound", local.port);
    return sock;
}

void
HostStack::udpUnbind(std::uint16_t port)
{
    inet_.unbindUdp(port);
}

void
HostStack::registerConn(const inet::FourTuple &t,
                        inet::TcpConnection *conn,
                        std::shared_ptr<TcpSocket> sock)
{
    inet_.registerConn(t, conn);
    socketsByConn_[conn] = std::move(sock);
    if (!conn->stats().registered()) {
        conn->stats().registerIn(
            statRegistry(),
            name() + ".tcp.conn" + std::to_string(connSeq_++));
    }
}

// ---------------------------------------------------------------------
// Transmit path
// ---------------------------------------------------------------------

void
HostStack::emitTcpSegment(IpDatagram &&dgram,
                          const inet::TcpSegMeta &meta)
{
    sim::Cycles c = costs().tcpOutputPerSeg + costs().ipPerPacket +
                    costs().driverTxPerPkt;
    // Retransmissions re-checksum data already resident in the kernel
    // (the original checksum was folded into the user copy).
    const HostNicDriver *nic = primaryNic();
    if (meta.retransmit && nic && !nic->checksumOffload()) {
        c += HostOS::byteCycles(costs().copyPerByte - 1.0,
                                meta.payloadBytes);
    }
    os_.defer(c, [this, d = std::move(dgram)]() mutable {
        inet_.ipOutput(std::move(d));
    });
}

void
HostStack::udpOutput(IpDatagram &&dgram,
                     std::function<void(inet::IpSendResult)> done)
{
    const sim::Cycles c = costs().udpOutputPerDgram +
                          costs().ipPerPacket + costs().driverTxPerPkt;
    os_.defer(c, [this, d = std::move(dgram),
                  done = std::move(done)]() mutable {
        const auto res = inet_.ipOutput(std::move(d));
        if (done)
            done(res);
    });
}

std::optional<std::uint32_t>
HostStack::txMtu(net::NodeId next_hop)
{
    const HostNicDriver *nic = egressFor(next_hop);
    if (nic == nullptr)
        return std::nullopt;
    return nic->mtu();
}

void
HostStack::chargeFragmentsTx(std::size_t extra)
{
    // One IP-layer pass per extra fragment, as the kernel's output
    // loop would charge.
    for (std::size_t i = 0; i < extra; ++i)
        os_.charge(costs().ipPerPacket);
}

void
HostStack::wireTx(std::vector<std::vector<std::uint8_t>> &&frames,
                  bool ipv6, net::NodeId dst_node)
{
    // Same per-route decision ipOutput's txMtu probe saw.
    HostNicDriver *nic = egressFor(dst_node);
    for (auto &frame : frames) {
        auto pkt = net::makePacket();
        pkt->src = nic->nodeId();
        pkt->dst = dst_node;
        pkt->proto = ipv6 ? net::NetProto::Ipv6 : net::NetProto::Ipv4;
        pkt->data = std::move(frame);
        nic->transmit(std::move(pkt));
    }
}

// ---------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------

void
HostStack::nicReceive(net::PacketPtr pkt)
{
    pktsIn.inc();
    os_.defer(costs().driverRxPerPkt, [this, pkt] {
        inet_.wireInput(pkt->proto, pkt->data);
    });
}

void
HostStack::chargeRxFrame(std::size_t)
{
    os_.charge(costs().ipPerPacket);
}

void
HostStack::chargeTcpInput(std::size_t payload_bytes, bool)
{
    sim::Cycles c = costs().tcpInputPerSeg;
    const HostNicDriver *nic = primaryNic();
    if (nic && !nic->checksumOffload()) {
        // The rx checksum pass over the payload.
        c += HostOS::byteCycles(1.0, payload_bytes);
    }
    os_.charge(c);
}

void
HostStack::chargeUdpInput(std::size_t payload_bytes)
{
    sim::Cycles c = costs().udpInputPerDgram;
    const HostNicDriver *nic = primaryNic();
    if (nic && !nic->checksumOffload())
        c += HostOS::byteCycles(1.0, payload_bytes);
    os_.charge(c);
}

bool
HostStack::tcpAccept(const inet::FourTuple &t,
                     const inet::TcpHeader &syn)
{
    auto lit = listeners_.find(syn.dstPort);
    if (lit == listeners_.end())
        return false;
    Listener *listener = lit->second.get();
    auto cfg = listener->cfg;
    auto sock = std::make_shared<TcpSocket>(*this, cfg,
                                            listener->rcvBuf);
    auto *conn = sock->conn_.get();
    registerConn(t, conn, sock);
    // Stash the accept callback for onConnected.
    sock->connectCb_ = [this, listener, sock](bool ok) {
        if (ok && listener->onAccept)
            listener->onAccept(sock);
    };
    conn->openPassive(t.local, t.remote, syn);
    return true;
}

void
HostStack::tcpRefused(const IpDatagram &dgram,
                      const inet::TcpHeader &hdr,
                      std::span<const std::uint8_t> payload)
{
    // RFC 793: RST for segments to nonexistent connections.
    if (hdr.has(inet::tcpflags::rst))
        return;
    inet::TcpHeader rst;
    rst.srcPort = hdr.dstPort;
    rst.dstPort = hdr.srcPort;
    rst.flags = inet::tcpflags::rst | inet::tcpflags::ack;
    rst.seq = hdr.has(inet::tcpflags::ack) ? hdr.ack : 0;
    rst.ack = hdr.seq + static_cast<std::uint32_t>(payload.size()) +
              (hdr.has(inet::tcpflags::syn) ? 1 : 0);
    IpDatagram out;
    out.src = dgram.dst;
    out.dst = dgram.src;
    out.proto = IpProto::Tcp;
    out.payload = serializeTcp(out.src, out.dst, rst, {});
    os_.defer(costs().tcpOutputPerSeg + costs().driverTxPerPkt,
              [this, d = std::move(out)]() mutable {
                  inet_.ipOutput(std::move(d));
              });
}

// ---------------------------------------------------------------------
// Runtime services
// ---------------------------------------------------------------------

sim::Tick
HostStack::now()
{
    return curTick();
}

sim::EventHandle
HostStack::scheduleTimer(sim::Tick delay, std::function<void()> fn)
{
    return os_.timer(delay, std::move(fn));
}

std::uint32_t
HostStack::randomIss()
{
    return static_cast<std::uint32_t>(rng().next());
}

const std::string &
HostStack::inetName() const
{
    return name();
}

void
HostStack::connectionClosed(inet::TcpConnection &conn)
{
    // The engine already dropped the PCB entry. Release the stack's
    // reference once the current callback chain unwinds; the
    // application may still hold the socket.
    auto *key = &conn;
    schedule(curTick(), [this, key] { socketsByConn_.erase(key); });
}

sim::Tracer *
HostStack::tracer()
{
    return &SimObject::tracer();
}

} // namespace qpip::host
