/**
 * @file
 * Host CPU cost model for the host-based inter-network stack — the
 * per-operation cycle charges that stand in for instruction paths of
 * a 550 MHz Pentium-III running Linux 2.4. Calibrated so that:
 *
 *  - Table 1 reproduces: send+receive host path for a 1-byte TCP
 *    message ~= 16.4k cycles (29.9 us at 550 MHz);
 *  - Figure 4's CPU utilizations reproduce: the host stacks burn half
 *    to three quarters of a processor at their peak ttcp throughput
 *    while QPIP's host path (verbs post + completion poll) stays
 *    under 1%.
 *
 * Per-byte costs model the copy/checksum passes, per-packet costs the
 * protocol and driver code paths, and per-call costs the syscall
 * boundary. All are plain data so benches can ablate them.
 */

#pragma once

#include <cstdint>

#include "sim/types.hh"

namespace qpip::host {

/** Cycle costs for the host OS and network stack (550 MHz domain). */
struct HostCostModel
{
    std::uint64_t cpuFreqHz = 550'000'000;

    // Syscall boundary.
    sim::Cycles syscallOverhead = 900;

    // Socket layer (per send()/recv() call, excluding copies).
    sim::Cycles sockSendBase = 1800;
    sim::Cycles sockRecvBase = 1700;

    /** User<->kernel copy including the checksum pass (cycles/byte). */
    double copyChecksumPerByte = 3.1;
    /** Copy without checksum (checksum-offload capable paths). */
    double copyPerByte = 2.2;

    // Protocol processing per segment/datagram.
    sim::Cycles tcpOutputPerSeg = 2900;
    sim::Cycles tcpInputPerSeg = 4300;
    sim::Cycles udpOutputPerDgram = 2100;
    sim::Cycles udpInputPerDgram = 2600;
    sim::Cycles ipPerPacket = 900;

    // Driver + interrupt path.
    sim::Cycles driverTxPerPkt = 1300;
    sim::Cycles driverRxPerPkt = 1200;
    sim::Cycles interruptOverhead = 4200;
    sim::Cycles timerSoftirq = 500;

    /** Waking a blocked process (schedule + context switch). */
    sim::Cycles processWakeup = 2600;
};

} // namespace qpip::host
