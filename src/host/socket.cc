#include "host/socket.hh"

#include "host/host_stack.hh"

#include "inet/udp.hh"
#include "sim/logging.hh"

namespace qpip::host {

// ---------------------------------------------------------------------
// TcpSocket
// ---------------------------------------------------------------------

TcpSocket::TcpSocket(HostStack &stack, inet::TcpConfig cfg,
                     std::size_t rcv_buf_bytes)
    : stack_(stack),
      conn_(std::make_unique<inet::TcpConnection>(stack.inet(), *this,
                                                  cfg)),
      rxBuf_(rcv_buf_bytes)
{}

TcpSocket::~TcpSocket() = default;

void
TcpSocket::sendAll(std::vector<std::uint8_t> data, DoneCb done)
{
    if (pendingSendDone_)
        sim::panic("TcpSocket: overlapping sendAll");
    pendingSend_ = std::move(data);
    pendingSendOff_ = 0;
    pendingSendDone_ = std::move(done);
    continueSend();
}

void
TcpSocket::continueSend()
{
    if (sendInProgress_ || !pendingSendDone_)
        return;
    if (error_) {
        auto done = std::move(pendingSendDone_);
        pendingSend_.clear();
        done();
        return;
    }
    const std::size_t remaining = pendingSend_.size() - pendingSendOff_;
    if (remaining == 0) {
        auto done = std::move(pendingSendDone_);
        pendingSend_.clear();
        pendingSendOff_ = 0;
        done();
        return;
    }
    const std::size_t space = conn_->sendSpace();
    if (space == 0)
        return; // wait for onSendSpace
    const std::size_t n = std::min(remaining, space);

    const auto &costs = stack_.costs();
    const sim::Cycles c = costs.syscallOverhead + costs.sockSendBase +
                          stack_.txCopyCycles(n);
    sendInProgress_ = true;
    stack_.os().defer(c, [self = shared_from_this(), n] {
        self->sendInProgress_ = false;
        const std::size_t accepted = self->conn_->send(
            std::span<const std::uint8_t>(
                self->pendingSend_.data() + self->pendingSendOff_, n));
        self->pendingSendOff_ += accepted;
        self->continueSend();
    });
}

void
TcpSocket::onSendSpace(inet::TcpConnection &)
{
    if (!pendingSendDone_ || sendInProgress_)
        return;
    // Writer was blocked: pay the wakeup, then continue the loop.
    sendInProgress_ = true;
    stack_.os().defer(stack_.costs().processWakeup,
                      [self = shared_from_this()] {
                          self->sendInProgress_ = false;
                          self->continueSend();
                      });
}

void
TcpSocket::recv(std::size_t max_bytes, RecvCb cb)
{
    if (recvWaiting_)
        sim::panic("TcpSocket: overlapping recv");
    recvMax_ = max_bytes;
    recvCb_ = std::move(cb);
    recvWaiting_ = true;
    ++recvGen_;
    const auto &costs = stack_.costs();
    stack_.os().defer(costs.syscallOverhead + costs.sockRecvBase,
                      [self = shared_from_this()] {
                          self->serveRecvWaiter();
                      });
}

void
TcpSocket::serveRecvWaiter()
{
    if (!recvWaiting_ || recvCopyInFlight_)
        return;
    if (rxBuf_.empty()) {
        if (eofReceived_ || error_) {
            recvWaiting_ = false;
            auto cb = std::move(recvCb_);
            cb({});
        }
        return; // stay blocked until data arrives
    }
    const std::size_t n = std::min(recvMax_, rxBuf_.size());
    const sim::Cycles c =
        HostOS::byteCycles(stack_.costs().copyPerByte, n);
    // Claim the cycle: further wakeups must not charge a second copy.
    recvCopyInFlight_ = true;
    const std::uint64_t gen = recvGen_;
    stack_.os().defer(c, [self = shared_from_this(), gen] {
        self->recvCopyInFlight_ = false;
        if (!self->recvWaiting_ || gen != self->recvGen_)
            return;
        const std::size_t take =
            std::min(self->recvMax_, self->rxBuf_.size());
        if (take == 0)
            return; // re-blocked; data will wake us again
        self->recvWaiting_ = false;
        auto cb = std::move(self->recvCb_);
        auto data = self->rxBuf_.read(take);
        // Draining the sockbuf opens the advertised window.
        self->conn_->onReceiveWindowGrew();
        cb(std::move(data));
    });
}

namespace {

/** Cycle-free state machine behind recvExact. */
struct ExactRead : std::enable_shared_from_this<ExactRead>
{
    std::shared_ptr<TcpSocket> sock;
    std::size_t want = 0;
    TcpSocket::RecvCb cb;
    std::vector<std::uint8_t> acc;

    static void
    step(std::shared_ptr<ExactRead> st)
    {
        if (st->acc.size() >= st->want || st->sock->eof() ||
            st->sock->error()) {
            st->cb(std::move(st->acc));
            return;
        }
        auto sock = st->sock;
        sock->recv(st->want - st->acc.size(),
                   [st](std::vector<std::uint8_t> part) {
                       if (part.empty()) {
                           // EOF/error: surface what we have.
                           st->cb(std::move(st->acc));
                           return;
                       }
                       st->acc.insert(st->acc.end(), part.begin(),
                                      part.end());
                       step(st);
                   });
    }
};

} // namespace

void
TcpSocket::recvExact(std::size_t n, RecvCb cb)
{
    auto st = std::make_shared<ExactRead>();
    st->sock = shared_from_this();
    st->want = n;
    st->cb = std::move(cb);
    st->acc.reserve(n);
    ExactRead::step(std::move(st));
}

void
TcpSocket::close()
{
    stack_.os().defer(stack_.costs().syscallOverhead,
                      [self = shared_from_this()] {
                          self->conn_->close();
                      });
}

void
TcpSocket::onConnected(inet::TcpConnection &)
{
    connected_ = true;
    if (connectCb_) {
        auto cb = std::move(connectCb_);
        stack_.os().defer(stack_.costs().processWakeup,
                          [cb = std::move(cb)] { cb(true); });
    }
}

void
TcpSocket::onDataDelivered(inet::TcpConnection &,
                           std::span<const std::uint8_t> data)
{
    rxBuf_.append(data);
    if (recvWaiting_) {
        stack_.os().defer(stack_.costs().processWakeup,
                          [self = shared_from_this()] {
                              self->serveRecvWaiter();
                          });
    }
}

void
TcpSocket::onPeerClosed(inet::TcpConnection &)
{
    eofReceived_ = true;
    if (recvWaiting_) {
        stack_.os().defer(stack_.costs().processWakeup,
                          [self = shared_from_this()] {
                              self->serveRecvWaiter();
                          });
    }
}

void
TcpSocket::onClosed(inet::TcpConnection &)
{
    eofReceived_ = true;
    serveRecvWaiter();
}

void
TcpSocket::onReset(inet::TcpConnection &)
{
    error_ = true;
    eofReceived_ = true;
    if (connectCb_) {
        auto cb = std::move(connectCb_);
        cb(false);
    }
    serveRecvWaiter();
    continueSend();
}

std::uint32_t
TcpSocket::receiveWindow(inet::TcpConnection &)
{
    return static_cast<std::uint32_t>(rxBuf_.freeSpace());
}

// ---------------------------------------------------------------------
// UdpSocket
// ---------------------------------------------------------------------

UdpSocket::UdpSocket(HostStack &stack, inet::SockAddr local)
    : stack_(stack), local_(std::move(local))
{}

UdpSocket::~UdpSocket() = default;

void
UdpSocket::sendTo(std::vector<std::uint8_t> data,
                  const inet::SockAddr &dst, SendCb done)
{
    const auto &costs = stack_.costs();
    const sim::Cycles c = costs.syscallOverhead + costs.sockSendBase +
                          stack_.txCopyCycles(data.size());
    stack_.os().defer(
        c,
        [self = shared_from_this(), data = std::move(data), dst,
         done = std::move(done)]() mutable {
            inet::IpDatagram dgram;
            dgram.src = self->local_.addr;
            dgram.dst = dst.addr;
            dgram.proto = inet::IpProto::Udp;
            dgram.payload =
                inet::serializeUdp(self->local_.addr, dst.addr,
                             self->local_.port, dst.port, data);
            self->stack_.udpOutput(std::move(dgram),
                                   std::move(done));
        });
}

void
UdpSocket::recvFrom(RecvFromCb cb)
{
    if (waiter_)
        sim::panic("UdpSocket: overlapping recvFrom");
    const auto &costs = stack_.costs();
    if (!rxQueue_.empty()) {
        auto dgram = std::move(rxQueue_.front());
        rxQueue_.pop_front();
        const sim::Cycles c =
            costs.syscallOverhead + costs.sockRecvBase +
            HostOS::byteCycles(costs.copyPerByte, dgram.data.size());
        stack_.os().defer(c, [cb = std::move(cb),
                              d = std::move(dgram)]() mutable {
            cb(std::move(d));
        });
        return;
    }
    stack_.os().charge(costs.syscallOverhead + costs.sockRecvBase);
    waiter_ = std::move(cb);
}

void
UdpSocket::udpDeliver(std::vector<std::uint8_t> &&payload,
                      const inet::SockAddr &from)
{
    Datagram d;
    d.data = std::move(payload);
    d.from = from;
    deliver(std::move(d));
}

void
UdpSocket::deliver(Datagram dgram)
{
    if (waiter_) {
        auto cb = std::move(waiter_);
        waiter_ = nullptr;
        const auto &costs = stack_.costs();
        const sim::Cycles c =
            costs.processWakeup +
            HostOS::byteCycles(costs.copyPerByte, dgram.data.size());
        stack_.os().defer(c, [cb = std::move(cb),
                              d = std::move(dgram)]() mutable {
            cb(std::move(d));
        });
        return;
    }
    if (rxQueue_.size() >= rxQueueCap_)
        return; // tail drop, like a full socket buffer
    rxQueue_.push_back(std::move(dgram));
}

} // namespace qpip::host
