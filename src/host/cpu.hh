/**
 * @file
 * A serializing CPU resource with busy-time accounting. All kernel
 * and application work on a host flows through one of these; the
 * Figure 4 / Figure 7 CPU-utilization numbers are Δbusy/Δwall read
 * off it. (The PowerEdge 6350 has four processors, but ttcp and the
 * NBD client are single-threaded — one modeled CPU carries the same
 * information as the paper's "fraction of a host processor".)
 */

#pragma once

#include <algorithm>
#include <utility>

#include "sim/clock.hh"
#include "sim/sim_object.hh"

namespace qpip::host {

/**
 * One host CPU.
 */
class CpuModel : public sim::SimObject
{
  public:
    CpuModel(sim::Simulation &sim, std::string name,
             std::uint64_t freq_hz);

    /**
     * Reserve @p cycles of CPU and run @p fn when they complete.
     * Work is serialized in submission order. The callable is stored
     * directly in the event queue's pooled record (no std::function).
     */
    template <typename F>
    void
    run(sim::Cycles cycles, F &&fn)
    {
        charge(cycles);
        schedule(busyUntil_, std::forward<F>(fn));
    }

    /** Reserve cycles with no completion action. */
    void
    charge(sim::Cycles cycles)
    {
        const sim::Tick dur = clock_.cyclesToTicks(cycles);
        const sim::Tick start = std::max(curTick(), busyUntil_);
        busyUntil_ = start + dur;
        busyTotal_ += dur;
    }

    /** Total busy ticks committed so far. */
    sim::Tick busyTotal() const { return busyTotal_; }

    /** Tick at which currently queued work completes. */
    sim::Tick busyUntil() const { return busyUntil_; }

    const sim::ClockDomain &clock() const { return clock_; }

    /** Utilization over a window measured by the caller. */
    static double
    utilization(sim::Tick busy_delta, sim::Tick wall_delta)
    {
        if (wall_delta == 0)
            return 0.0;
        return static_cast<double>(busy_delta) /
               static_cast<double>(wall_delta);
    }

  private:
    sim::ClockDomain clock_;
    sim::Tick busyUntil_ = 0;
    sim::Tick busyTotal_ = 0;
};

} // namespace qpip::host
