#include "host/cpu.hh"

#include <algorithm>

#include "sim/simulation.hh"

namespace qpip::host {

CpuModel::CpuModel(sim::Simulation &sim, std::string name,
                   std::uint64_t freq_hz)
    : SimObject(sim, std::move(name)), clock_(freq_hz)
{}

void
CpuModel::charge(sim::Cycles cycles)
{
    const sim::Tick dur = clock_.cyclesToTicks(cycles);
    const sim::Tick start = std::max(curTick(), busyUntil_);
    busyUntil_ = start + dur;
    busyTotal_ += dur;
}

void
CpuModel::run(sim::Cycles cycles, std::function<void()> fn)
{
    charge(cycles);
    schedule(busyUntil_, std::move(fn));
}

} // namespace qpip::host
