#include "host/cpu.hh"

#include <algorithm>

#include "sim/simulation.hh"

namespace qpip::host {

CpuModel::CpuModel(sim::Simulation &sim, std::string name,
                   std::uint64_t freq_hz)
    : SimObject(sim, std::move(name)), clock_(freq_hz)
{}

} // namespace qpip::host
