#include "host/host_os.hh"

#include "sim/simulation.hh"

namespace qpip::host {

HostOS::HostOS(sim::Simulation &sim, std::string name,
               HostCostModel costs)
    : SimObject(sim, std::move(name)), costs_(costs),
      cpu_(sim, this->name() + ".cpu", costs.cpuFreqHz)
{}

void
HostOS::defer(sim::Cycles cycles, std::function<void()> fn)
{
    cpu_.run(cycles, std::move(fn));
}

void
HostOS::interrupt(std::function<void()> isr)
{
    cpu_.run(costs_.interruptOverhead, std::move(isr));
}

sim::EventHandle
HostOS::timer(sim::Tick delay, std::function<void()> fn)
{
    return scheduleIn(delay, [this, fn = std::move(fn)]() mutable {
        cpu_.run(costs_.timerSoftirq, std::move(fn));
    });
}

} // namespace qpip::host
