#include "host/host_os.hh"

#include "sim/simulation.hh"

namespace qpip::host {

HostOS::HostOS(sim::Simulation &sim, std::string name,
               HostCostModel costs)
    : SimObject(sim, std::move(name)), costs_(costs),
      cpu_(sim, this->name() + ".cpu", costs.cpuFreqHz)
{}

} // namespace qpip::host
