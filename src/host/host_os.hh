/**
 * @file
 * Minimal host operating-system services: deferred work on the CPU
 * (syscall/kernel paths), interrupt dispatch, and kernel timers. The
 * "scheduler complexity" the paper contrasts against the NIC-resident
 * runtime shows up here as wakeup and softirq charges.
 */

#pragma once

#include <utility>

#include "host/cost_model.hh"
#include "host/cpu.hh"
#include "sim/sim_object.hh"

namespace qpip::host {

/**
 * The host OS kernel facade.
 */
class HostOS : public sim::SimObject
{
  public:
    HostOS(sim::Simulation &sim, std::string name, HostCostModel costs);

    CpuModel &cpu() { return cpu_; }
    const HostCostModel &costs() const { return costs_; }

    /** Run @p fn after charging @p cycles of CPU (serialized). */
    template <typename F>
    void
    defer(sim::Cycles cycles, F &&fn)
    {
        cpu_.run(cycles, std::forward<F>(fn));
    }

    /** Charge CPU with no continuation. */
    void charge(sim::Cycles cycles) { cpu_.charge(cycles); }

    /**
     * Deliver a device interrupt: charges the interrupt overhead,
     * then runs the service routine on the CPU.
     */
    template <typename F>
    void
    interrupt(F &&isr)
    {
        cpu_.run(costs_.interruptOverhead, std::forward<F>(isr));
    }

    /**
     * Arm a kernel timer. When it fires, the softirq charge is paid
     * before @p fn runs.
     */
    template <typename F>
    sim::EventHandle
    timer(sim::Tick delay, F &&fn)
    {
        return scheduleIn(
            delay, [this, fn = std::forward<F>(fn)]() mutable {
                cpu_.run(costs_.timerSoftirq, std::move(fn));
            });
    }

    /** Convert cycles at this host's frequency to ticks. */
    sim::Tick
    cyclesToTicks(sim::Cycles c) const
    {
        return cpu_.clock().cyclesToTicks(c);
    }

    /** Cycles for a per-byte rate. */
    static sim::Cycles
    byteCycles(double per_byte, std::size_t n)
    {
        return static_cast<sim::Cycles>(per_byte *
                                        static_cast<double>(n));
    }

  private:
    HostCostModel costs_;
    CpuModel cpu_;
};

} // namespace qpip::host
