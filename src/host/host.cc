#include "host/host.hh"

namespace qpip::host {

Host::Host(sim::Simulation &sim, const std::string &name,
           HostCostModel costs)
    : os_(sim, name + ".os", costs), stack_(sim, name + ".stack", os_)
{}

} // namespace qpip::host
