/**
 * @file
 * The in-kernel adapter around the shared inet::InetStack engine: the
 * baseline systems' dual-family (IPv4/IPv6) stack with the shared TCP
 * engine in stream mode, UDP, and the sockets demultiplexer. The
 * protocol machinery lives in the engine; this class supplies the
 * kernel execution context — every cost hook charges the host CPU
 * through the HostCostModel, which is where the paper's "host-based
 * nature of these implementations" becomes measurable overhead.
 */

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "host/host_os.hh"
#include "host/socket.hh"
#include "inet/inet_stack.hh"
#include "net/packet.hh"
#include "sim/sim_object.hh"

namespace qpip::host {

/**
 * Driver-side interface a NIC model exposes to the stack.
 */
class HostNicDriver
{
  public:
    virtual ~HostNicDriver() = default;

    /** Queue a frame for transmission (driver cost already paid). */
    virtual void transmit(net::PacketPtr pkt) = 0;

    virtual std::uint32_t mtu() const = 0;
    virtual net::NodeId nodeId() const = 0;

    /** True if the NIC checksums TCP/UDP payloads in hardware. */
    virtual bool checksumOffload() const = 0;
};

/**
 * The host kernel network stack: InetStack in kernel mode.
 */
class HostStack : public sim::SimObject, public inet::InetEnv
{
  public:
    using AcceptCb = std::function<void(std::shared_ptr<TcpSocket>)>;

    HostStack(sim::Simulation &sim, std::string name, HostOS &os);
    ~HostStack() override;

    /**
     * Attach an interface. The first NIC attached is the primary
     * (default egress and the source of MSS-deriving MTU); additional
     * NICs are reached per route via setEgress.
     */
    void attachNic(HostNicDriver &nic);

    /**
     * Pin the egress interface for traffic routed to fabric node
     * @p dst_node — the multi-homed host's per-route output-interface
     * decision. Unpinned routes use the primary NIC.
     */
    void setEgress(net::NodeId dst_node, HostNicDriver &nic);

    /** The egress NIC for @p dst_node (primary unless pinned). */
    HostNicDriver *egressFor(net::NodeId dst_node) const;

    /** The first-attached NIC, or nullptr before attachNic. */
    HostNicDriver *
    primaryNic() const
    {
        return nics_.empty() ? nullptr : nics_.front();
    }

    /** Register a local interface address. */
    void addAddress(const inet::InetAddr &addr);
    bool isLocal(const inet::InetAddr &addr) const;

    inet::NeighborTable &routes() { return inet_.routes(); }
    HostOS &os() { return os_; }

    /** The shared protocol engine (kernel execution context). */
    inet::InetStack &inet() { return inet_; }

    /** Default TCP config handed to sockets (mss derived from MTU). */
    inet::TcpConfig defaultTcpConfig() const;

    // --- socket API --------------------------------------------------
    std::shared_ptr<TcpSocket>
    tcpConnect(const inet::SockAddr &local, const inet::SockAddr &remote,
               const inet::TcpConfig &cfg, TcpSocket::ConnectCb cb,
               std::size_t rcv_buf = 256 * 1024);

    /** Monitor @p port for incoming connections. */
    void tcpListen(std::uint16_t port, const inet::TcpConfig &cfg,
                   AcceptCb on_accept, std::size_t rcv_buf = 256 * 1024);
    void tcpUnlisten(std::uint16_t port);

    std::shared_ptr<UdpSocket> udpBind(const inet::SockAddr &local);
    void udpUnbind(std::uint16_t port);

    // --- NIC receive path (called from the NIC ISR) -------------------
    void nicReceive(net::PacketPtr pkt);

    // --- used by sockets ----------------------------------------------
    /**
     * Emit one UDP datagram after charging the kernel's output path;
     * @p done (optional) reports the IP-layer outcome — EMSGSIZE-class
     * failures surface here instead of vanishing into a warn log.
     */
    void udpOutput(inet::IpDatagram &&dgram,
                   std::function<void(inet::IpSendResult)> done = nullptr);
    const HostCostModel &costs() const { return os_.costs(); }

    /**
     * Cycles for the user->kernel copy of @p n bytes; includes the
     * checksum pass unless the NIC offloads checksums (Linux 2.4's
     * csum_and_copy_from_user).
     */
    sim::Cycles
    txCopyCycles(std::size_t n) const
    {
        const HostNicDriver *nic = primaryNic();
        const bool offload = nic && nic->checksumOffload();
        return HostOS::byteCycles(offload ? costs().copyPerByte
                                          : costs().copyChecksumPerByte,
                                  n);
    }

    // --- InetEnv (kernel execution context) ---------------------------
    sim::Tick now() override;
    sim::EventHandle scheduleTimer(sim::Tick delay,
                                   std::function<void()> fn) override;
    std::uint32_t randomIss() override;
    sim::Tracer *tracer() override;
    const std::string &inetName() const override;
    void connectionClosed(inet::TcpConnection &conn) override;

    std::optional<std::uint32_t> txMtu(net::NodeId next_hop) override;
    void chargeFragmentsTx(std::size_t extra) override;
    void wireTx(std::vector<std::vector<std::uint8_t>> &&frames,
                bool ipv6, net::NodeId dst_node) override;
    void emitTcpSegment(inet::IpDatagram &&dgram,
                        const inet::TcpSegMeta &meta) override;

    void chargeRxFrame(std::size_t wire_bytes) override;
    void chargeTcpInput(std::size_t payload_bytes,
                        bool pure_ack) override;
    void chargeUdpInput(std::size_t payload_bytes) override;

    bool tcpAccept(const inet::FourTuple &t,
                   const inet::TcpHeader &syn) override;
    void tcpRefused(const inet::IpDatagram &dgram,
                    const inet::TcpHeader &hdr,
                    std::span<const std::uint8_t> payload) override;

  private:
    HostOS &os_;
    /** Attached interfaces in attach order; front is the primary. */
    std::vector<HostNicDriver *> nics_;
    // Lookup only, never iterated — safe despite hash ordering.
    std::unordered_map<net::NodeId, HostNicDriver *> egress_;
    inet::InetStack inet_;

  public:
    // Stats: engine counters surfaced under their legacy kernel
    // names; pktsIn counts NIC interrupts and stays adapter-owned.
    sim::Counter &pktsOut;
    sim::Counter pktsIn;
    sim::Counter &badPktsIn;
    sim::Counter &noPortDrops;
    sim::Counter &loopbackPkts;

  private:
    struct Listener
    {
        inet::TcpConfig cfg;
        AcceptCb onAccept;
        std::size_t rcvBuf;
    };

    friend class TcpSocket;
    friend class UdpSocket;

    /** Registration used by TcpSocket. */
    void registerConn(const inet::FourTuple &t,
                      inet::TcpConnection *conn,
                      std::shared_ptr<TcpSocket> sock);

    /** Ordered by port: any bulk walk visits listeners low-to-high. */
    std::map<std::uint16_t, std::unique_ptr<Listener>> listeners_;
    // Lookup/erase only, never iterated — safe despite pointer keys.
    std::unordered_map<inet::TcpConnection *, std::shared_ptr<TcpSocket>>
        socketsByConn_;
    /** Monotonic id for per-connection stat prefixes. */
    std::uint64_t connSeq_ = 0;
};

} // namespace qpip::host
