/**
 * @file
 * The in-kernel inter-network stack of the baseline systems: a
 * dual-family (IPv4/IPv6) IP layer with neighbor resolution and v6
 * reassembly, the shared TCP engine in stream mode, UDP, and the
 * sockets demultiplexer. Every path charges the host CPU through the
 * HostCostModel; this is where the paper's "host-based nature of
 * these implementations" becomes measurable overhead.
 */

#ifndef QPIP_HOST_HOST_STACK_HH
#define QPIP_HOST_HOST_STACK_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "host/host_os.hh"
#include "host/socket.hh"
#include "inet/ip_frag.hh"
#include "inet/pcb_table.hh"
#include "inet/route.hh"
#include "inet/tcp_conn.hh"
#include "net/packet.hh"
#include "sim/sim_object.hh"

namespace qpip::host {

/**
 * Driver-side interface a NIC model exposes to the stack.
 */
class HostNicDriver
{
  public:
    virtual ~HostNicDriver() = default;

    /** Queue a frame for transmission (driver cost already paid). */
    virtual void transmit(net::PacketPtr pkt) = 0;

    virtual std::uint32_t mtu() const = 0;
    virtual net::NodeId nodeId() const = 0;

    /** True if the NIC checksums TCP/UDP payloads in hardware. */
    virtual bool checksumOffload() const = 0;
};

/**
 * The host kernel network stack.
 */
class HostStack : public sim::SimObject, public inet::TcpEnv
{
  public:
    using AcceptCb = std::function<void(std::shared_ptr<TcpSocket>)>;

    HostStack(sim::Simulation &sim, std::string name, HostOS &os);
    ~HostStack() override;

    void attachNic(HostNicDriver &nic);

    /** Register a local interface address. */
    void addAddress(const inet::InetAddr &addr);
    bool isLocal(const inet::InetAddr &addr) const;

    inet::NeighborTable &routes() { return routes_; }
    HostOS &os() { return os_; }

    /** Default TCP config handed to sockets (mss derived from MTU). */
    inet::TcpConfig defaultTcpConfig() const;

    // --- socket API --------------------------------------------------
    std::shared_ptr<TcpSocket>
    tcpConnect(const inet::SockAddr &local, const inet::SockAddr &remote,
               const inet::TcpConfig &cfg, TcpSocket::ConnectCb cb,
               std::size_t rcv_buf = 256 * 1024);

    /** Monitor @p port for incoming connections. */
    void tcpListen(std::uint16_t port, const inet::TcpConfig &cfg,
                   AcceptCb on_accept, std::size_t rcv_buf = 256 * 1024);
    void tcpUnlisten(std::uint16_t port);

    std::shared_ptr<UdpSocket> udpBind(const inet::SockAddr &local);
    void udpUnbind(std::uint16_t port);

    // --- NIC receive path (called from the NIC ISR) -------------------
    void nicReceive(net::PacketPtr pkt);

    // --- used by sockets ----------------------------------------------
    void udpOutput(inet::IpDatagram &&dgram);
    const HostCostModel &costs() const { return os_.costs(); }

    /**
     * Cycles for the user->kernel copy of @p n bytes; includes the
     * checksum pass unless the NIC offloads checksums (Linux 2.4's
     * csum_and_copy_from_user).
     */
    sim::Cycles
    txCopyCycles(std::size_t n) const
    {
        const bool offload = nic_ && nic_->checksumOffload();
        return HostOS::byteCycles(offload ? costs().copyPerByte
                                          : costs().copyChecksumPerByte,
                                  n);
    }

    // --- TcpEnv --------------------------------------------------------
    sim::Tick now() override;
    sim::EventHandle scheduleTimer(sim::Tick delay,
                                   std::function<void()> fn) override;
    void tcpOutput(inet::IpDatagram &&dgram,
                   const inet::TcpSegMeta &meta) override;
    std::uint32_t randomIss() override;
    void connectionClosed(inet::TcpConnection &conn) override;
    sim::Tracer *tracer() override;

    // Stats.
    sim::Counter pktsOut;
    sim::Counter pktsIn;
    sim::Counter badPktsIn;
    sim::Counter noPortDrops;
    sim::Counter loopbackPkts;

  private:
    struct Listener
    {
        inet::TcpConfig cfg;
        AcceptCb onAccept;
        std::size_t rcvBuf;
    };

    friend class TcpSocket;
    friend class UdpSocket;

    /** Registration used by TcpSocket. */
    void registerConn(const inet::FourTuple &t,
                      inet::TcpConnection *conn,
                      std::shared_ptr<TcpSocket> sock);

    void processRx(net::PacketPtr pkt);
    void ipInput(inet::IpDatagram dgram);
    void deliverTcp(inet::IpDatagram &dgram);
    void deliverUdp(inet::IpDatagram &dgram);
    void sendToWire(inet::IpDatagram dgram);

    HostOS &os_;
    HostNicDriver *nic_ = nullptr;
    inet::NeighborTable routes_;
    std::unordered_set<inet::InetAddr, inet::InetAddrHash> localAddrs_;

    inet::PcbTable<inet::TcpConnection, Listener> tcp_;
    std::unordered_map<std::uint16_t, std::unique_ptr<Listener>>
        listeners_;
    std::unordered_map<inet::TcpConnection *, std::shared_ptr<TcpSocket>>
        socketsByConn_;
    std::unordered_map<std::uint16_t, UdpSocket *> udpPorts_;

    inet::Ipv6Reassembler reass6_;
    std::uint16_t identCounter_ = 1;
    std::uint32_t fragIdent_ = 1;
    /** Monotonic id for per-connection stat prefixes. */
    std::uint64_t connSeq_ = 0;
};

} // namespace qpip::host

#endif // QPIP_HOST_HOST_STACK_HH
