/**
 * @file
 * The traditional sockets interface over the host-resident stack —
 * the baseline abstraction QPIP replaces. Calls are asynchronous
 * (callback-based) because hosts are event-driven simulation objects,
 * but each call charges the CPU exactly like its blocking counterpart:
 * syscall crossing, socket-layer work, and the user/kernel copy (with
 * the checksum folded in on non-offloading NICs, as Linux 2.4 did).
 */

#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "host/sockbuf.hh"
#include "inet/inet_stack.hh"
#include "inet/tcp_conn.hh"

namespace qpip::host {

class HostStack;

/**
 * A connected (or connecting) TCP socket.
 */
class TcpSocket : public inet::TcpObserver,
                  public std::enable_shared_from_this<TcpSocket>
{
  public:
    using ConnectCb = std::function<void(bool ok)>;
    using RecvCb = std::function<void(std::vector<std::uint8_t> data)>;
    using DoneCb = std::function<void()>;

    TcpSocket(HostStack &stack, inet::TcpConfig cfg,
              std::size_t rcv_buf_bytes);
    ~TcpSocket() override;

    /**
     * Send as much of @p data as fits, then wait for space and
     * continue, invoking @p done when everything is queued to TCP.
     * This is write() in a loop — the ttcp/NBD workhorse.
     */
    void sendAll(std::vector<std::uint8_t> data, DoneCb done);

    /**
     * Read up to @p max_bytes; blocks (asynchronously) until at least
     * one byte or EOF. EOF and errors deliver an empty vector.
     */
    void recv(std::size_t max_bytes, RecvCb cb);

    /**
     * Read exactly @p n bytes (looping recv), EOF/error short-reads
     * deliver what arrived.
     */
    void recvExact(std::size_t n, RecvCb cb);

    /** Graceful close. */
    void close();

    bool connected() const { return connected_; }
    bool eof() const { return eofReceived_ && rxBuf_.empty(); }
    bool error() const { return error_; }
    inet::TcpConnection &connection() { return *conn_; }

    /** Bytes buffered and readable without blocking. */
    std::size_t rxAvailable() const { return rxBuf_.size(); }
    /** True while a recv() is blocked. */
    bool recvWaiting() const { return recvWaiting_; }
    /** Bytes of a sendAll() not yet accepted by TCP. */
    std::size_t
    sendBacklog() const
    {
        return pendingSend_.size() - pendingSendOff_;
    }

    // --- TcpObserver ------------------------------------------------
    void onConnected(inet::TcpConnection &) override;
    void onDataDelivered(inet::TcpConnection &,
                         std::span<const std::uint8_t>) override;
    void onSendSpace(inet::TcpConnection &) override;
    void onPeerClosed(inet::TcpConnection &) override;
    void onClosed(inet::TcpConnection &) override;
    void onReset(inet::TcpConnection &) override;
    std::uint32_t receiveWindow(inet::TcpConnection &) override;

  private:
    friend class HostStack;

    void continueSend();
    void serveRecvWaiter();

    HostStack &stack_;
    std::unique_ptr<inet::TcpConnection> conn_;
    SockBuf rxBuf_;
    bool connected_ = false;
    bool eofReceived_ = false;
    bool error_ = false;

    ConnectCb connectCb_;

    // Pending sendAll state.
    std::vector<std::uint8_t> pendingSend_;
    std::size_t pendingSendOff_ = 0;
    DoneCb pendingSendDone_;
    bool sendInProgress_ = false;

    // Pending recv state.
    std::size_t recvMax_ = 0;
    RecvCb recvCb_;
    bool recvWaiting_ = false;
    bool recvCopyInFlight_ = false;
    /** Distinguishes recv cycles so stale completions are ignored. */
    std::uint64_t recvGen_ = 0;
};

/**
 * A bound UDP socket.
 */
class UdpSocket : public inet::UdpEndpoint,
                  public std::enable_shared_from_this<UdpSocket>
{
  public:
    struct Datagram
    {
        std::vector<std::uint8_t> data;
        inet::SockAddr from;
    };

    using RecvFromCb = std::function<void(Datagram)>;
    /** Reports the IP-layer outcome of a sendTo (EMSGSIZE etc.). */
    using SendCb = std::function<void(inet::IpSendResult)>;

    UdpSocket(HostStack &stack, inet::SockAddr local);
    ~UdpSocket() override;

    const inet::SockAddr &localAddr() const { return local_; }

    /**
     * Send one datagram (charges the full sendto() path). @p done
     * fires once the IP layer has accepted or refused the datagram;
     * an oversized payload reports IpSendResult::MsgSize, the moral
     * equivalent of sendto() failing with EMSGSIZE.
     */
    void sendTo(std::vector<std::uint8_t> data,
                const inet::SockAddr &dst, SendCb done = nullptr);

    /** Receive one datagram (waits if none queued). */
    void recvFrom(RecvFromCb cb);

    /** Queued datagram count (receive side). */
    std::size_t pendingCount() const { return rxQueue_.size(); }

  private:
    friend class HostStack;

    // --- inet::UdpEndpoint ------------------------------------------
    void udpDeliver(std::vector<std::uint8_t> &&payload,
                    const inet::SockAddr &from) override;

    /** Queue/hand off one arrived datagram. */
    void deliver(Datagram dgram);

    HostStack &stack_;
    inet::SockAddr local_;
    std::deque<Datagram> rxQueue_;
    std::size_t rxQueueCap_ = 256;
    RecvFromCb waiter_;
};

} // namespace qpip::host
