/**
 * @file
 * Socket receive buffer with finite capacity. Its free space is what
 * the host TCP advertises as the receive window — the "system calls
 * and/or OS specific variables" tuning knob the paper contrasts with
 * QPIP's posted-buffer window.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "inet/byte_fifo.hh"

namespace qpip::host {

/**
 * Bounded FIFO of received bytes.
 */
class SockBuf
{
  public:
    explicit SockBuf(std::size_t capacity) : capacity_(capacity) {}

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return fifo_.size(); }

    std::size_t
    freeSpace() const
    {
        return size() >= capacity_ ? 0 : capacity_ - size();
    }

    /**
     * Append received bytes. The protocol layer should have respected
     * the advertised window; anything beyond capacity is still stored
     * (TCP windows are advisory by the time data is in flight).
     */
    void append(std::span<const std::uint8_t> data);

    /** Remove and return up to @p max_bytes from the head. */
    std::vector<std::uint8_t> read(std::size_t max_bytes);

    bool empty() const { return fifo_.empty(); }

  private:
    std::size_t capacity_;
    inet::ByteFifo fifo_;
};

} // namespace qpip::host
