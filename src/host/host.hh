/**
 * @file
 * A host node: one CPU-accounted OS plus the in-kernel network stack.
 * Testbeds construct Hosts, attach NIC models, assign addresses and
 * routes, and run applications against the stack's socket API (or, on
 * QPIP hosts, against the verbs library in src/qpip).
 */

#pragma once

#include <memory>
#include <string>

#include "host/host_os.hh"
#include "host/host_stack.hh"

namespace qpip::host {

/**
 * One simulated host machine.
 */
class Host
{
  public:
    Host(sim::Simulation &sim, const std::string &name,
         HostCostModel costs = HostCostModel{});

    HostOS &os() { return os_; }
    HostStack &stack() { return stack_; }
    CpuModel &cpu() { return os_.cpu(); }

  private:
    HostOS os_;
    HostStack stack_;
};

} // namespace qpip::host
