/**
 * @file
 * The QPIP network interface — the paper's core artifact. It
 * implements basic queue pair operations over a subset of TCP, UDP
 * and IP entirely "in the interface": a 133 MHz firmware processor
 * (LanaiProcessor) runs the four logical FSMs of Figure 1,
 *
 *   - the doorbell FSM monitors QP notifications and updates the QP
 *     state table with outstanding-WR counts;
 *   - the management FSM executes privileged commands (QP/CQ create,
 *     memory bindings, connection management);
 *   - the scheduler/transmit FSM services pending send WRs: Get WR,
 *     Get Data (PCI DMA), Build TCP/UDP Hdr, Build IP Hdr, Send,
 *     Update — the stage sequence of Figure 2 and Table 2;
 *   - the receive FSM parses arriving packets: Media Rcv, IP Parse
 *     (incl. reassembly), TCP/UDP Parse, Get WR, Put Data,
 *     Update WR/CQ — Figure 2 and Table 3.
 *
 * The protocol machinery itself is the shared inet::InetStack, run
 * here in its firmware execution context: this class maps the
 * engine's cost hooks onto FirmwareCostModel stage charges. The TCP
 * engine is the shared inet::TcpConnection in message mode (one QP
 * message <-> one TCP segment); end-to-end IP fragmentation (IPv6
 * native, IPv4 via the same engine) carries arbitrary-size segments
 * over the link MTU; the receive window tracks posted receive-buffer
 * bytes. Host interaction is via doorbells (down) and
 * completion-queue DMA writes (up), so host overhead is just the
 * verbs post/poll paths.
 */

#pragma once

#include <map>
#include <memory>
#include <unordered_map>

#include "inet/inet_stack.hh"
#include "inet/tcp_conn.hh"
#include "inet/udp.hh"
#include "net/link.hh"
#include "net/serialize.hh"
#include "nic/doorbell.hh"
#include "nic/dma.hh"
#include "nic/firmware_cost.hh"
#include "nic/lanai.hh"
#include "nic/qp_ctx_cache.hh"
#include "nic/qp_state.hh"

namespace qpip::nic {

/** Static configuration of a QPIP NIC. */
struct QpipNicParams
{
    FirmwareCostModel costs = lanai9EmulatedHwChecksum();
    /** Per-direction PCI DMA engine parameters (LANai 9 has two). */
    DmaConfig dma{264e6, sim::oneUs * 5 / 2};
    std::size_t doorbellCap = 1024;
    /** Firmware TCP defaults (messageMode/reassembly forced). */
    inet::TcpConfig tcp = defaultFirmwareTcpConfig();
    /** Reassembly partial-datagram expiry. */
    sim::Tick reassExpiry = 50 * sim::oneMs;
    /**
     * QP contexts resident in NIC SRAM before eviction (the LANai's
     * 2 MB part holds on the order of a thousand context blocks
     * beside the firmware and staging buffers). Zero disables the
     * cache model: every touch hits and nothing is charged.
     */
    std::size_t qpCacheCapacity = 1024;
    /**
     * Non-zero switches the context cache to byte-denominated
     * capacity: context blocks occupy their per-type size
     * (qpContextBytes) and fetch/writeback charges scale
     * proportionally. qpCacheCapacity is then ignored — it remains
     * the back-compat entry-count shim used when this is zero.
     */
    std::size_t qpCacheBytes = 0;
    /**
     * Non-zero: doorbell coalescing window, in LANai cycles. A ring
     * addressed to a queue whose newest doorbell record is still
     * undrained and younger than the window folds into that record
     * (one DoorbellProcess pass covers both) instead of re-entering
     * the FIFO. Zero (default): every ring is its own record, the
     * paper's per-post discipline.
     */
    sim::Cycles doorbellCoalesceCycles = 0;
    /**
     * Completion-event moderation: when > 1, an armed CQ is notified
     * only once this many CQEs have accumulated since the last
     * notification — or cqModerationCycles after the first deferred
     * CQE, whichever comes first. 0 or 1 (default): every CQE
     * notifies immediately, the legacy behavior.
     */
    std::uint32_t cqModerationCount = 0;
    /**
     * Moderation timeout, in LANai cycles: an armed CQ holding
     * deferred CQEs is notified this long after the first one even
     * if the count threshold was never reached. Only meaningful with
     * cqModerationCount > 1.
     */
    sim::Cycles cqModerationCycles = 0;

    static inet::TcpConfig defaultFirmwareTcpConfig();
};

/** Optional QP creation attributes (SRQ attachment, RDMA framing). */
struct QpCreateAttrs
{
    /** Draw receive WRs from this SRQ instead of the QP's own ring. */
    SrqNum srq = invalidSrq;
    /**
     * Non-zero enables RDMA message framing on this (reliable) QP and
     * adds this many bytes of one-sided receive window beyond posted
     * WR bytes. Both endpoints of a connection must enable it.
     */
    std::uint32_t rdmaWindowBytes = 0;
};

class TransportEngine;
class RcEngine;
class UdEngine;
class RudEngine;

/**
 * The QPIP intelligent NIC: InetStack in firmware mode.
 *
 * The common datapath (doorbell intake, scheduler, WR fetch, payload
 * staging, delivery into posted WRs, completion DMA) lives here; the
 * per-service-type tail of each path — wire framing, reliability and
 * the matching firmware stage charges — is delegated to one
 * TransportEngine per QP type (src/nic/transport/): RcEngine for the
 * TCP-backed reliable service, UdEngine for raw datagrams, RudEngine
 * for the reliable-over-UD shim whose per-peer state lives in host
 * memory.
 */
class QpipNic : public sim::SimObject,
                public net::NetReceiver,
                public inet::InetEnv
{
    friend class TransportEngine;
    friend class RcEngine;
    friend class UdEngine;
    friend class RudEngine;

  public:
    using ConnectCb = std::function<void(bool ok)>;
    using AcceptCb = std::function<void(QpNum qp)>;

    QpipNic(sim::Simulation &sim, std::string name, net::Link &link,
            net::NodeId node, QpipNicParams params);
    ~QpipNic() override;

    // --- management FSM interface (privileged, via kernel driver) ----
    void setAddress(const inet::InetAddr &addr);
    const inet::InetAddr &address() const { return addr_; }
    inet::NeighborTable &routes() { return inet_.routes(); }

    MrKey registerMemory(std::uint8_t *base, std::size_t bytes,
                         MrAccess access = accessLocal);
    void deregisterMemory(MrKey key);

    /**
     * Create a QP whose work queues live in @p rings (host memory)
     * and whose send/receive completions go to @p scq / @p rcq.
     */
    QpNum createQp(QpType type, QpHostRings *rings, CqRing *scq,
                   CqRing *rcq, const QpCreateAttrs &attrs = {});
    void destroyQp(QpNum qp);

    /** Create a shared receive queue backed by host ring @p ring. */
    SrqNum createSrq(SrqHostRing *ring);
    /** Destroy an SRQ. @pre no QP is still attached to it. */
    void destroySrq(SrqNum srq);

    /** Bind the QP to a local port (UDP demux / TCP source port). */
    void bindLocal(QpNum qp, std::uint16_t port);

    /** Active TCP open; @p done fires when established (or failed). */
    void connect(QpNum qp, const inet::SockAddr &remote, ConnectCb done);

    /**
     * Instruct the interface to monitor @p port for incoming
     * connections and mate the next one to idle @p qp.
     */
    void acceptOn(std::uint16_t port, QpNum qp, AcceptCb done);

    /** Graceful close of a connected QP (TCP FIN exchange). */
    void disconnect(QpNum qp);

    // --- datapath (user-level) ----------------------------------------
    /**
     * Notify the NIC of newly posted WRs (rings a doorbell).
     * @p wr_count is the number of WRs the ring announces — a
     * chained post passes the chain length and pays one doorbell.
     */
    void postDoorbell(QpNum qp, bool is_send,
                      std::uint32_t wr_count = 1);

    /** Notify the NIC of newly posted SRQ receive WRs. */
    void postSrqDoorbell(SrqNum srq, std::uint32_t wr_count = 1);

    // --- NetReceiver ----------------------------------------------------
    void onPacket(net::PacketPtr pkt) override;

    // --- InetEnv (firmware execution context) ---------------------------
    sim::Tick now() override;
    sim::EventHandle scheduleTimer(sim::Tick delay,
                                   std::function<void()> fn) override;
    std::uint32_t randomIss() override;
    sim::Tracer *tracer() override;
    const std::string &inetName() const override;
    void connectionClosed(inet::TcpConnection &conn) override;

    std::optional<std::uint32_t> txMtu(net::NodeId next_hop) override;
    void chargeIpHeaderTx() override;
    void chargeFragmentsTx(std::size_t extra) override;
    void chargeMediaSend() override;
    void wireTx(std::vector<std::vector<std::uint8_t>> &&frames,
                bool ipv6, net::NodeId dst_node) override;
    void emitTcpSegment(inet::IpDatagram &&dgram,
                        const inet::TcpSegMeta &meta) override;

    void chargeRxFrame(std::size_t wire_bytes) override;
    void chargeIpParsed(bool fragment) override;
    void chargeTcpInput(std::size_t payload_bytes,
                        bool pure_ack) override;
    void chargeUdpPreParse() override;

    bool tcpAccept(const inet::FourTuple &t,
                   const inet::TcpHeader &syn) override;

    // --- introspection ---------------------------------------------------
    /**
     * Liveness token: verbs objects hold a weak_ptr and skip their
     * NIC-side teardown when the device object is already gone.
     */
    std::shared_ptr<void> lifeToken() const { return aliveToken_; }

    LanaiProcessor &fw() { return fw_; }
    const FirmwareCostModel &costs() const { return params_.costs; }
    const QpipNicParams &params() const { return params_; }
    inet::TcpConnection *connectionOf(QpNum qp);

    /** The QP context cache (hit/miss/eviction introspection). */
    const QpContextCache &qpCache() const { return qpCache_; }

    /** The doorbell FIFO (ring/coalesce/batch introspection). */
    const DoorbellFifo &doorbells() const { return doorbells_; }

    /** The shared protocol engine (firmware execution context). */
    inet::InetStack &inet() { return inet_; }

  private:
    struct QpContext;
    struct SrqContext;

    std::shared_ptr<void> aliveToken_ = std::make_shared<int>(0);
    net::Link &link_;
    net::NodeId node_;
    QpipNicParams params_;
    LanaiProcessor fw_;
    DmaEngine dmaIn_;  ///< host -> NIC payload DMA
    DmaEngine dmaOut_; ///< NIC -> host payload DMA
    DoorbellFifo doorbells_;
    MrTable mrs_;
    QpContextCache qpCache_;
    inet::InetStack inet_;

  public:
    // Stats: badPackets / noQpDrops surface the engine's counters
    // under the firmware's legacy names.
    sim::Counter &badPackets;
    sim::Counter &noQpDrops;
    sim::Counter udpNoWrDrops;
    sim::Counter cqOverflows;
    // One-sided RDMA engine.
    sim::Counter rdmaWrites;
    sim::Counter rdmaReads;
    sim::Counter rdmaRemoteErrors;
    sim::Counter rdmaMalformed;
    // Shared receive queues.
    sim::Counter srqRnrHolds;   ///< messages held: SRQ empty
    sim::Counter srqEmptyDrops; ///< UD datagrams dropped: SRQ empty
    // QP context cache (evictions are counted by the cache itself).
    sim::Counter ctxWritebacks;
    // Reliable-datagram shim.
    sim::Counter rudRetransmits; ///< datagrams re-emitted by the RTO
    sim::Counter rudAcksSent;    ///< standalone (non-piggybacked) acks
    sim::Counter rudSeqDrops;    ///< duplicate / out-of-order data
    sim::Counter rudRnrHolds;    ///< in-order data held: no recv WR
    sim::Counter rudMalformed;   ///< undecodable RUD framing
    // Completion-event moderation.
    sim::Counter cqNotifies;  ///< host notifications delivered
    sim::Counter cqCoalesced; ///< armed-CQ CQEs whose notify deferred

  private:
    // FSM bodies.
    void doorbellDrain();
    /**
     * Queue the scheduler stage for @p qp. A batch doorbell record
     * passes the whole fresh-WR run: one Schedule charge covers it
     * and the service loop walks @p run WRs back to back.
     */
    void scheduleSendService(QpContext &qp, std::uint64_t run = 1);
    void serviceSendWr(QpContext &qp);
    void receiveIntoWr(QpContext &qp, std::vector<std::uint8_t> msg,
                       const inet::SockAddr &from);

    /** The per-service-type datapath tail for @p type. */
    TransportEngine &engineFor(QpType type);

    /**
     * Reference a QP's context in NIC SRAM; on a miss, charge the
     * fetch (and any writeback of displaced dirty contexts). @p dirty
     * marks the touch as modifying QP state; read-only touches leave
     * a clean resident copy that evicts for free.
     */
    void touchQpContext(QpNum qp, bool dirty = true);

    /** Fetch + writeback cycles for one cache miss / install. */
    sim::Cycles ctxMissCycles(const QpContextCache::Touch &t) const;

    /** Push a completion at firmware-completion time. */
    void pushCompletion(CqRing *cq, Completion c);

    /**
     * Deliver a moderated notification to @p cq if it is still armed
     * with entries pending, and reset its moderation state.
     */
    void cqKick(CqRing *cq);

    void flushQp(QpContext &qp, WcStatus status);

    QpContext *lookupQp(QpNum qp);

    inet::InetAddr addr_;
    std::uint16_t ephemeralPort_ = 40000;
    QpNum nextQpNum_ = 1;
    SrqNum nextSrqNum_ = 1;
    bool drainActive_ = false;

    // Per-transport engines (constructed in the NIC's constructor,
    // torn down before the members they reference by declaration
    // order). RudEngine keeps its per-peer reliability state here, in
    // what models host memory — not in the QP contexts.
    std::unique_ptr<RcEngine> rcEngine_;
    std::unique_ptr<UdEngine> udEngine_;
    std::unique_ptr<RudEngine> rudEngine_;

    /** Ordered by QP number: table walks follow creation order. */
    std::map<QpNum, std::unique_ptr<QpContext>> qps_;
    /** Ordered by SRQ number. */
    std::map<SrqNum, std::unique_ptr<SrqContext>> srqs_;
    // Lookup/erase only, never iterated — safe despite pointer keys.
    std::unordered_map<inet::TcpConnection *, QpContext *> connOwner_;

    /** Per-CQ completion-event moderation state. */
    struct CqModState
    {
        /** Armed-CQ CQEs accumulated since the last notification. */
        std::uint32_t pending = 0;
        /** The timeout kick for the oldest deferred CQE. */
        sim::EventHandle timer;
    };
    // Lookup/erase only, never iterated — safe despite pointer keys.
    std::unordered_map<CqRing *, CqModState> cqMod_;

    struct PendingAccept
    {
        QpNum qp = invalidQp;
        AcceptCb done;
    };
    std::map<std::uint16_t, std::deque<PendingAccept>> listeners_;
};

} // namespace qpip::nic
