/**
 * @file
 * LANai 9 firmware cost model. Stage costs are expressed in cycles of
 * the 133 MHz NIC processor and default to values derived from the
 * paper's measured occupancy breakdown (Tables 2 and 3):
 *
 *   transmit: doorbell 1 us, schedule 2 us, get WR 5.5 us, get data
 *   4.5 us (1-byte message; larger messages add DMA time), TCP hdr
 *   5 us, IP hdr 1 us, send 1 us, update 1.5 us;
 *   receive: doorbell 1 us, media 1 us, IP parse 1.5 us, TCP parse
 *   7 us (data) / 14 us (ACK — the RTT-estimator multiplies are
 *   software on a multiply-less LANai), get WR 5.5 us, put data
 *   4.5 us, update 1.5 us (data) / 9 us (ACK: WR + QP state).
 *
 * The hardware-assist booleans are the knobs the paper's section 5.2
 * names as the key acceleration targets: lightweight doorbells, IP
 * checksums, connection demultiplexing and "advanced mathematical
 * functions" (the multiplier). The ablation bench sweeps them.
 */

#pragma once

#include <cstdint>

#include "sim/types.hh"

namespace qpip::nic {

/** All firmware processing costs, in 133 MHz LANai cycles. */
struct FirmwareCostModel
{
    std::uint64_t freqHz = 133'000'000;

    /** Convert microseconds at the LANai clock to cycles. */
    static constexpr sim::Cycles
    us(double u)
    {
        return static_cast<sim::Cycles>(u * 133.0);
    }

    // --- transmit path (Table 2) -------------------------------------
    sim::Cycles doorbellProcess = us(1.0);
    /**
     * Each WR beyond the first announced by one batch doorbell
     * record (a chained post, or records folded by the coalescing
     * window): the doorbell FSM pays the full doorbellProcess once
     * per record and only this increment per extra WR. Singleton
     * records never pay it, so legacy configs are unaffected.
     */
    sim::Cycles doorbellPerWr = us(0.2);
    sim::Cycles schedule = us(2.0);
    sim::Cycles getWr = us(5.5);
    /** Fixed part of Get Data; the payload DMA itself adds to it. */
    sim::Cycles getDataFixed = us(2.0);
    sim::Cycles buildTcpHdr = us(5.0);
    sim::Cycles buildUdpHdr = us(1.5);
    sim::Cycles buildIpHdr = us(1.0);
    /** Per extra IPv6 fragment beyond the first (header + engine). */
    sim::Cycles perFragmentTx = us(12.0);
    sim::Cycles mediaSend = us(1.0);
    sim::Cycles updateTxData = us(1.5);
    sim::Cycles updateTxAck = us(1.5);

    // --- receive path (Table 3) --------------------------------------
    sim::Cycles mediaRcv = us(1.0);
    sim::Cycles ipParse = us(1.5);
    /** Per extra received fragment (parse + reassembly bookkeeping). */
    sim::Cycles perFragmentRx = us(17.0);
    sim::Cycles tcpParseData = us(7.0);
    /** Extra on a pure ACK without hwMultiply: RTT estimator math. */
    sim::Cycles tcpParseAckExtra = us(7.0);
    sim::Cycles udpParse = us(2.0);
    /** Fixed part of Put Data; payload DMA adds to it. */
    sim::Cycles putDataFixed = us(2.0);
    sim::Cycles updateRxData = us(1.5);
    sim::Cycles updateRxAck = us(9.0);

    // --- one-sided RDMA engine ---------------------------------------
    /** Build the RETH-style framing header on the requester. */
    sim::Cycles rdmaHeaderBuild = us(1.5);
    /** Parse the framing header and dispatch on the opcode. */
    sim::Cycles rdmaParse = us(1.5);
    /** Firmware-generated response (WriteAck / ReadResp) assembly. */
    sim::Cycles rdmaRespBuild = us(2.0);

    // --- reliable-datagram (RUD) shim --------------------------------
    /** Stamp seq + piggybacked ack onto an outgoing datagram. */
    sim::Cycles rudHeaderBuild = us(1.0);
    /** Parse the seq/ack framing and locate the peer record. */
    sim::Cycles rudParse = us(1.5);
    /** Retire acked sends: walk the unacked window, complete WRs. */
    sim::Cycles rudAckProcess = us(2.0);
    /** Assemble a standalone cumulative ack datagram. */
    sim::Cycles rudAckBuild = us(1.0);

    // --- QP context cache (LANai SRAM as a finite resource) ----------
    /**
     * Fetch a QP context absent from NIC SRAM: DMA the state block
     * from host memory and rebuild the demux entry.
     */
    sim::Cycles qpCtxFetch = us(6.0);
    /** Write back an evicted (dirty) context to host memory. */
    sim::Cycles qpCtxWriteback = us(3.0);

    // --- management FSM ----------------------------------------------
    sim::Cycles mgmtCommand = us(8.0);
    sim::Cycles timerService = us(1.0);

    /** SRAM staging/buffer management per payload byte on each path. */
    double touchPerByte = 1.27;

    // --- hardware assists ---------------------------------------------
    /** DMA engine computes IP checksums on transmit (LANai 9 can). */
    bool hwChecksumTx = true;
    /**
     * Receive-side hardware checksum. The real LANai 9 cannot
     * (the paper's "artifact of the Myrinet hardware"); the paper's
     * headline figures emulate it, and also report the firmware
     * fallback. When false, the firmware pays fwChecksumPerByte.
     */
    bool hwChecksumRx = true;
    double fwChecksumPerByte = 2.75;
    /** Fixed per-packet setup of the firmware checksum loop. */
    sim::Cycles fwChecksumFixed = us(1.0);
    /** Hardware multiplier (absent on LANai 9). */
    bool hwMultiply = false;
    /** Hardware doorbell FIFO (present on LANai 9). */
    bool hwDoorbell = true;
    /** Doorbell cost multiplier when hwDoorbell is off. */
    double swDoorbellFactor = 4.0;
    /** Hardware connection demux (CAM); halves parse fixed costs. */
    bool hwDemux = false;
};

/** The prototype exactly as measured (firmware rx checksum). */
inline FirmwareCostModel
lanai9FirmwareCosts()
{
    FirmwareCostModel m;
    m.hwChecksumRx = false;
    return m;
}

/** The paper's headline config: emulated hardware rx checksum. */
inline FirmwareCostModel
lanai9EmulatedHwChecksum()
{
    return FirmwareCostModel{};
}

/**
 * "Infiniband-grade" hardware support per section 5.2: checksums,
 * demux, multiplier and doorbells all in hardware, protocol engines
 * an order of magnitude faster than the 133 MHz software loop.
 */
inline FirmwareCostModel
infinibandGradeCosts()
{
    FirmwareCostModel m;
    m.hwChecksumRx = true;
    m.hwMultiply = true;
    m.hwDemux = true;
    m.touchPerByte = 0.0;
    m.doorbellProcess = FirmwareCostModel::us(0.2);
    m.doorbellPerWr = FirmwareCostModel::us(0.05);
    m.schedule = FirmwareCostModel::us(0.2);
    m.getWr = FirmwareCostModel::us(0.8);
    m.getDataFixed = FirmwareCostModel::us(0.4);
    m.buildTcpHdr = FirmwareCostModel::us(0.5);
    m.buildUdpHdr = FirmwareCostModel::us(0.3);
    m.buildIpHdr = FirmwareCostModel::us(0.2);
    m.perFragmentTx = FirmwareCostModel::us(1.0);
    m.mediaSend = FirmwareCostModel::us(0.2);
    m.updateTxData = FirmwareCostModel::us(0.3);
    m.updateTxAck = FirmwareCostModel::us(0.3);
    m.mediaRcv = FirmwareCostModel::us(0.2);
    m.ipParse = FirmwareCostModel::us(0.3);
    m.perFragmentRx = FirmwareCostModel::us(1.0);
    m.tcpParseData = FirmwareCostModel::us(0.8);
    m.tcpParseAckExtra = 0;
    m.udpParse = FirmwareCostModel::us(0.4);
    m.putDataFixed = FirmwareCostModel::us(0.4);
    m.updateRxData = FirmwareCostModel::us(0.3);
    m.updateRxAck = FirmwareCostModel::us(0.5);
    m.mgmtCommand = FirmwareCostModel::us(2.0);
    m.rdmaHeaderBuild = FirmwareCostModel::us(0.3);
    m.rdmaParse = FirmwareCostModel::us(0.3);
    m.rdmaRespBuild = FirmwareCostModel::us(0.4);
    m.rudHeaderBuild = FirmwareCostModel::us(0.2);
    m.rudParse = FirmwareCostModel::us(0.3);
    m.rudAckProcess = FirmwareCostModel::us(0.4);
    m.rudAckBuild = FirmwareCostModel::us(0.2);
    m.qpCtxFetch = FirmwareCostModel::us(1.5);
    m.qpCtxWriteback = FirmwareCostModel::us(0.8);
    return m;
}

} // namespace qpip::nic
