#include "nic/eth_nic.hh"

#include "sim/simulation.hh"

namespace qpip::nic {

EthNicParams
pro1000Params()
{
    EthNicParams p;
    p.mtu = 1500;
    p.checksumOffload = false; // Linux 2.4-era e1000 path
    p.dma = DmaConfig{264e6, sim::oneUs};
    p.perPacketTx = sim::oneUs;
    p.perPacketRx = sim::oneUs;
    p.intrDelay = 4 * sim::oneUs;
    return p;
}

EthNicParams
gmIpParams()
{
    EthNicParams p;
    p.mtu = 9000;
    p.checksumOffload = false;
    // GM's ethernet emulation stages every frame through LANai SRAM
    // with firmware copies — the effective per-byte rate is far below
    // raw PCI.
    p.dma = DmaConfig{65e6, 2 * sim::oneUs};
    p.perPacketTx = 5 * sim::oneUs;
    p.perPacketRx = 5 * sim::oneUs;
    p.intrDelay = 4 * sim::oneUs;
    return p;
}

EthNic::EthNic(sim::Simulation &sim, std::string name,
               host::HostStack &stack, net::Link &link, net::NodeId node,
               EthNicParams params)
    : SimObject(sim, std::move(name)), stack_(stack), link_(link),
      node_(node), params_(params),
      dma_(sim, this->name() + ".dma", params.dma)
{
    link_.attach(0, *this);
    stack_.attachNic(*this);
    regStat("txPackets", txPackets);
    regStat("rxPackets", rxPackets);
    regStat("rxRingDrops", rxRingDrops);
    regStat("interrupts", interrupts);
}

void
EthNic::transmit(net::PacketPtr pkt)
{
    txPackets.inc();
    // Stage across PCI into adapter memory, then hit the wire.
    const sim::Tick done =
        dma_.charge(pkt->data.size()) + params_.perPacketTx;
    schedule(done, [this, pkt] { link_.send(0, pkt); });
}

void
EthNic::onPacket(net::PacketPtr pkt)
{
    rxPackets.inc();
    if (rxRing_.size() >= params_.rxRingCap) {
        rxRingDrops.inc();
        return;
    }
    // DMA into a host ring buffer, then interrupt (moderated).
    const sim::Tick done =
        dma_.charge(pkt->data.size()) + params_.perPacketRx;
    schedule(done, [this, pkt] {
        rxRing_.push_back(pkt);
        raiseInterrupt();
    });
}

void
EthNic::raiseInterrupt()
{
    if (intrPending_)
        return;
    intrPending_ = true;
    scheduleIn(params_.intrDelay, [this] { serviceRing(); });
}

void
EthNic::serviceRing()
{
    interrupts.inc();
    stack_.os().interrupt([this] {
        // The ISR hands every queued frame to the stack; packets that
        // arrive during processing are picked up by the next
        // interrupt (natural coalescing under load).
        while (!rxRing_.empty()) {
            auto pkt = rxRing_.front();
            rxRing_.pop_front();
            stack_.nicReceive(pkt);
        }
        intrPending_ = false;
    });
}

} // namespace qpip::nic
