#include "nic/report.hh"

#include "sim/logging.hh"

namespace qpip::nic {

std::string
fwOccupancyReport(const LanaiProcessor &fw)
{
    std::string out;
    out += sim::strfmt("%-18s %8s %10s %10s %10s\n", "stage", "n",
                       "mean(us)", "min(us)", "max(us)");
    for (std::size_t i = 0; i < numFwStages; ++i) {
        const auto stage = static_cast<FwStage>(i);
        const auto &s = fw.stageStat(stage);
        if (s.count() == 0)
            continue;
        out += sim::strfmt("%-18s %8llu %10.2f %10.2f %10.2f\n",
                           fwStageName(stage),
                           static_cast<unsigned long long>(s.count()),
                           s.mean(), s.min(), s.max());
    }
    out += sim::strfmt("busy total: %.1f us\n",
                       sim::ticksToUs(fw.busyTotal()));
    return out;
}

std::string
tcpStatsReport(const inet::TcpStats &s)
{
    auto line = [](const char *name, const sim::Counter &c) {
        return sim::strfmt("%-18s %llu\n", name,
                           static_cast<unsigned long long>(c.value()));
    };
    std::string out;
    out += line("segs out", s.segsOut);
    out += line("segs in", s.segsIn);
    out += line("bytes out", s.bytesOut);
    out += line("bytes in", s.bytesIn);
    out += line("retransmits", s.retransmits);
    out += line("fast rtx", s.fastRetransmits);
    out += line("timeouts", s.timeouts);
    out += line("dup acks in", s.dupAcksIn);
    out += line("ooo segments", s.oooSegments);
    out += line("ooo dropped", s.oooDropped);
    out += line("hdr predicted", s.hdrPredicted);
    out += line("msgs refused", s.msgRefused);
    out += line("persist probes", s.persistProbes);
    out += line("bad segments", s.badSegments);
    return out;
}

} // namespace qpip::nic
