#include "nic/report.hh"

#include "nic/lanai.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace qpip::nic {

std::string
fwOccupancyReport(const sim::StatRegistry &stats,
                  const std::string &fw_prefix)
{
    std::string out;
    out += sim::strfmt("%-18s %8s %10s %10s %10s\n", "stage", "n",
                       "mean(us)", "min(us)", "max(us)");
    for (std::size_t i = 0; i < numFwStages; ++i) {
        const auto stage = static_cast<FwStage>(i);
        const sim::SampleStat *s = stats.sample(
            fw_prefix + ".stage." + fwStageTag(stage));
        if (s == nullptr || s->count() == 0)
            continue;
        out += sim::strfmt("%-18s %8llu %10.2f %10.2f %10.2f\n",
                           fwStageName(stage),
                           static_cast<unsigned long long>(s->count()),
                           s->mean(), s->min(), s->max());
    }
    out += sim::strfmt("busy total: %.1f us\n",
                       sim::ticksToUs(stats.counterValue(
                           fw_prefix + ".busyTicks")));
    return out;
}

std::string
tcpStatsReport(const sim::StatRegistry &stats, const std::string &prefix)
{
    auto line = [&](const char *name, const char *leaf) {
        return sim::strfmt("%-18s %llu\n", name,
                           static_cast<unsigned long long>(
                               stats.counterValue(prefix + "." + leaf)));
    };
    std::string out;
    out += line("segs out", "segsOut");
    out += line("segs in", "segsIn");
    out += line("bytes out", "bytesOut");
    out += line("bytes in", "bytesIn");
    out += line("retransmits", "retransmits");
    out += line("fast rtx", "fastRetransmits");
    out += line("timeouts", "timeouts");
    out += line("dup acks in", "dupAcksIn");
    out += line("ooo segments", "oooSegments");
    out += line("ooo dropped", "oooDropped");
    out += line("hdr predicted", "hdrPredicted");
    out += line("msgs refused", "msgRefused");
    out += line("persist probes", "persistProbes");
    out += line("bad segments", "badSegments");
    return out;
}

} // namespace qpip::nic
