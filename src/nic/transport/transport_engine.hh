/**
 * @file
 * The per-service-type tail of the QPIP datapath. QpipNic owns the
 * stages every QP type shares — doorbell intake, the scheduler, WR
 * fetch, payload staging DMA, delivery into posted WRs and the
 * completion path — and hands off at the points where the service
 * types diverge: wire framing of an outgoing message, demux of an
 * incoming datagram, port binding, receive-WR replenish and QP
 * teardown. One engine instance per type per NIC; engines are
 * stateless for RC/UD (all state lives in the QpContext) while the
 * RUD engine keeps its per-peer reliability state in host memory,
 * outside the NIC's cached QP contexts.
 *
 * Engines execute inside the firmware's execution context: they
 * charge LanaiProcessor stages exactly where the pre-split monolith
 * did, so the RC/UD paths are stage-by-stage timing-identical to it.
 */

#pragma once

#include "nic/qpip_nic.hh"

namespace qpip::nic {

class TransportEngine
{
  public:
    // Engines are friends of QpipNic; re-export the nested context
    // type so member signatures and bodies can name it directly.
    using QpContext = QpipNic::QpContext;

    explicit TransportEngine(QpipNic &nic) : nic_(nic) {}
    virtual ~TransportEngine() = default;

    TransportEngine(const TransportEngine &) = delete;
    TransportEngine &operator=(const TransportEngine &) = delete;

    /**
     * Scheduler/transmit FSM tail: frame and emit one send WR whose
     * payload @p data is already staged in NIC SRAM (Get Data has
     * been charged). Runs at the firmware's completion of that stage.
     */
    virtual void transmit(QpipNic::QpContext &qp, SendWr wr,
                          std::vector<std::uint8_t> data) = 0;

    /**
     * A UDP datagram demuxed to @p qp's bound port (datagram
     * services only; the connected service receives via TcpObserver).
     */
    virtual void datagramDeliver(QpipNic::QpContext &qp,
                                 std::vector<std::uint8_t> &&msg,
                                 const inet::SockAddr &from);

    /** bindLocal bound @p qp to qp.local (install port demux). */
    virtual void bound(QpipNic::QpContext &qp);

    /** destroyQp is tearing down a bound @p qp (remove port demux). */
    virtual void unbound(QpipNic::QpContext &qp);

    /**
     * Posted receive WRs grew (the QP's own ring or its attached
     * SRQ): anything the engine held back for want of a WR may land
     * now.
     */
    virtual void recvReplenished(QpipNic::QpContext &qp);

    /**
     * @p qp is flushing (destroy / reset / close): surface engine-
     * held WRs as @p status completions and drop transient state.
     */
    virtual void flushed(QpipNic::QpContext &qp, WcStatus status);

  protected:
    QpipNic &nic_;
};

} // namespace qpip::nic
