#include "nic/transport/rc_engine.hh"

#include <algorithm>

#include "nic/transport/qp_context.hh"
#include "sim/simulation.hh"

namespace qpip::nic {

using sim::Tick;

void
RcEngine::transmit(QpContext &qp, SendWr wr,
                   std::vector<std::uint8_t> data)
{
    if (!qp.conn) {
        Completion c;
        c.wrId = wr.id;
        c.qp = qp.num;
        c.isSend = true;
        c.opcode = wr.opcode;
        c.status = WcStatus::Flushed;
        nic_.pushCompletion(qp.scq, c);
        return;
    }
    const std::uint64_t tag = qp.nextTag++;
    if (qp.rdmaWindow == 0) {
        // Legacy framing: the message is the raw payload.
        qp.inflightSends.push_back(
            {tag, QpContext::TxKind::Send, wr});
        qp.conn->sendMessage(std::move(data), tag);
        return;
    }
    net::RdmaHeader h;
    if (wr.opcode == WrOpcode::Send) {
        h.opcode = net::RdmaOpcode::Send;
        qp.inflightSends.push_back(
            {tag, QpContext::TxKind::Send, wr});
    } else {
        h.opcode = net::RdmaOpcode::Write;
        h.opId = qp.nextRdmaId++;
        h.raddr = wr.raddr;
        h.rkey = wr.rkey;
        nic_.fw_.charge(FwStage::RdmaExec,
                        nic_.params_.costs.rdmaHeaderBuild);
        if (nic_.tracer()->enabled()) {
            nic_.tracer()->instant(
                nic_.name(), "rdma write req", nic_.curTick(),
                "{\"qp\":" + std::to_string(qp.num) +
                    ",\"bytes\":" + std::to_string(wr.sge.length) +
                    "}");
        }
        qp.inflightSends.push_back(
            {tag, QpContext::TxKind::RdmaReq, wr});
        qp.pendingRdma.emplace_back(h.opId, wr);
    }
    qp.conn->sendMessage(net::serializeRdmaMessage(h, data), tag);
}

void
RcEngine::serviceRdmaRead(QpContext &qp, SendWr wr)
{
    // The WR's SGE is the local landing buffer. Validate it — and
    // that the response message can traverse our own standing
    // window — before anything crosses the wire.
    std::uint8_t *dst = nic_.mrs_.resolve(wr.sge);
    const bool oversize =
        net::rdmaHeaderBytes(net::RdmaOpcode::ReadResp) +
            wr.sge.length >
        qp.rdmaWindow;
    if (dst == nullptr || oversize) {
        Completion c;
        c.wrId = wr.id;
        c.qp = qp.num;
        c.isSend = true;
        c.opcode = wr.opcode;
        c.status = WcStatus::LengthError;
        nic_.pushCompletion(qp.scq, c);
        return;
    }
    nic_.fw_.charge(FwStage::RdmaExec,
                    nic_.params_.costs.rdmaHeaderBuild);
    // destroyQp() erases the context immediately: deferred work
    // captures the QP number and re-looks-up, never a reference.
    nic_.schedule(nic_.fw_.busyUntil(), [this, qpn = qp.num,
                                         wr]() mutable {
        QpContext *ctx = nic_.lookupQp(qpn);
        if (ctx == nullptr)
            return; // destroyed while the firmware was busy
        QpContext &qp = *ctx;
        if (!qp.conn) {
            Completion c;
            c.wrId = wr.id;
            c.qp = qp.num;
            c.isSend = true;
            c.opcode = wr.opcode;
            c.status = WcStatus::Flushed;
            nic_.pushCompletion(qp.scq, c);
            return;
        }
        net::RdmaHeader h;
        h.opcode = net::RdmaOpcode::ReadReq;
        h.opId = qp.nextRdmaId++;
        h.raddr = wr.raddr;
        h.rkey = wr.rkey;
        h.length = static_cast<std::uint32_t>(wr.sge.length);
        if (nic_.tracer()->enabled()) {
            nic_.tracer()->instant(
                nic_.name(), "rdma read req", nic_.curTick(),
                "{\"qp\":" + std::to_string(qp.num) +
                    ",\"bytes\":" + std::to_string(wr.sge.length) +
                    "}");
        }
        const std::uint64_t tag = qp.nextTag++;
        qp.inflightSends.push_back(
            {tag, QpContext::TxKind::RdmaReq, wr});
        qp.pendingRdma.emplace_back(h.opId, wr);
        qp.conn->sendMessage(net::serializeRdmaMessage(h, {}), tag);
    });
}

void
RcEngine::handleRdmaMessage(QpContext &qp,
                            std::vector<std::uint8_t> msg,
                            const inet::SockAddr &from)
{
    nic_.touchQpContext(qp.num);
    nic_.fw_.exec(
        FwStage::RdmaExec, nic_.params_.costs.rdmaParse,
        [this, qpn = qp.num, msg = std::move(msg), from]() mutable {
            QpContext *ctx = nic_.lookupQp(qpn);
            if (ctx == nullptr)
                return; // destroyed while the firmware was busy
            QpContext &qp = *ctx;
            net::RdmaHeader h;
            std::span<const std::uint8_t> payload;
            if (!net::parseRdmaMessage(msg, h, payload)) {
                nic_.rdmaMalformed.inc();
                return;
            }
            switch (h.opcode) {
              case net::RdmaOpcode::Send:
                nic_.receiveIntoWr(qp,
                                   std::vector<std::uint8_t>(
                                       payload.begin(),
                                       payload.end()),
                                   from);
                break;
              case net::RdmaOpcode::Write:
                executeRdmaWrite(qp, h, payload);
                break;
              case net::RdmaOpcode::ReadReq:
                executeRdmaRead(qp, h);
                break;
              case net::RdmaOpcode::WriteAck:
              case net::RdmaOpcode::ReadResp:
                completeRdmaOp(qp, h, payload);
                break;
            }
        });
}

void
RcEngine::executeRdmaWrite(QpContext &qp, const net::RdmaHeader &hdr,
                           std::span<const std::uint8_t> payload)
{
    net::RdmaHeader resp;
    resp.opcode = net::RdmaOpcode::WriteAck;
    resp.opId = hdr.opId;

    const Sge target{hdr.rkey,
                     static_cast<std::size_t>(hdr.raddr),
                     payload.size()};
    std::uint8_t *dst = nic_.mrs_.resolve(target, accessRemoteWrite);
    if (dst == nullptr) {
        nic_.rdmaRemoteErrors.inc();
        resp.status = net::RdmaWireStatus::RemoteAccess;
        sendRdmaResponse(qp, resp, {});
        return;
    }
    // Put Data: DMA the payload from NIC SRAM into the target region
    // (same shape as the two-sided receive path).
    const Tick begin = std::max(nic_.curTick(), nic_.fw_.busyUntil());
    const Tick fixed = nic_.fw_.clock().cyclesToTicks(
        nic_.params_.costs.putDataFixed);
    const Tick touch = nic_.fw_.clock().cyclesToTicks(
        static_cast<sim::Cycles>(
            nic_.params_.costs.touchPerByte *
            static_cast<double>(payload.size())));
    const Tick dma =
        nic_.dmaOut_.chargeAt(begin, payload.size()) - begin;
    nic_.fw_.chargeTicks(FwStage::PutData,
                         fixed + std::max(touch, dma));
    std::copy(payload.begin(), payload.end(), dst);
    nic_.fw_.charge(FwStage::UpdateRx,
                    nic_.params_.costs.updateRxData);
    nic_.rdmaWrites.inc();
    if (nic_.tracer()->enabled()) {
        nic_.tracer()->instant(
            nic_.name(), "rdma write exec", nic_.curTick(),
            "{\"qp\":" + std::to_string(qp.num) +
                ",\"bytes\":" + std::to_string(payload.size()) + "}");
    }
    sendRdmaResponse(qp, resp, {});
}

void
RcEngine::executeRdmaRead(QpContext &qp, const net::RdmaHeader &hdr)
{
    net::RdmaHeader resp;
    resp.opcode = net::RdmaOpcode::ReadResp;
    resp.opId = hdr.opId;

    const Sge source{hdr.rkey,
                     static_cast<std::size_t>(hdr.raddr),
                     static_cast<std::size_t>(hdr.length)};
    const std::uint8_t *src =
        nic_.mrs_.resolve(source, accessRemoteRead);
    if (src == nullptr) {
        nic_.rdmaRemoteErrors.inc();
        resp.status = net::RdmaWireStatus::RemoteAccess;
        sendRdmaResponse(qp, resp, {});
        return;
    }
    // Get Data: stage the requested range from host memory into NIC
    // SRAM for transmission (mirror of the transmit path).
    const Tick begin = std::max(nic_.curTick(), nic_.fw_.busyUntil());
    const Tick fixed = nic_.fw_.clock().cyclesToTicks(
        nic_.params_.costs.getDataFixed);
    const Tick touch = nic_.fw_.clock().cyclesToTicks(
        static_cast<sim::Cycles>(nic_.params_.costs.touchPerByte *
                                 static_cast<double>(hdr.length)));
    const Tick dma = nic_.dmaIn_.chargeAt(begin, hdr.length) - begin;
    nic_.fw_.chargeTicks(FwStage::GetData,
                         fixed + std::max(touch, dma));
    nic_.rdmaReads.inc();
    if (nic_.tracer()->enabled()) {
        nic_.tracer()->instant(
            nic_.name(), "rdma read exec", nic_.curTick(),
            "{\"qp\":" + std::to_string(qp.num) +
                ",\"bytes\":" + std::to_string(hdr.length) + "}");
    }
    sendRdmaResponse(qp, resp, {src, src + hdr.length});
}

void
RcEngine::sendRdmaResponse(QpContext &qp, net::RdmaHeader hdr,
                           std::span<const std::uint8_t> payload)
{
    nic_.fw_.charge(FwStage::RdmaExec,
                    nic_.params_.costs.rdmaRespBuild);
    auto bytes = net::serializeRdmaMessage(hdr, payload);
    nic_.schedule(nic_.fw_.busyUntil(),
                  [this, qpn = qp.num,
                   bytes = std::move(bytes)]() mutable {
                      QpContext *ctx = nic_.lookupQp(qpn);
                      if (ctx == nullptr || !ctx->conn)
                          return; // torn down before the response left
                      QpContext &qp = *ctx;
                      const std::uint64_t tag = qp.nextTag++;
                      qp.inflightSends.push_back(
                          {tag, QpContext::TxKind::FwResp, SendWr{}});
                      qp.conn->sendMessage(std::move(bytes), tag);
                  });
}

void
RcEngine::completeRdmaOp(QpContext &qp, const net::RdmaHeader &hdr,
                         std::span<const std::uint8_t> payload)
{
    if (qp.pendingRdma.empty() ||
        qp.pendingRdma.front().first != hdr.opId) {
        sim::panic("qp%u: rdma response out of order", qp.num);
    }
    SendWr wr = std::move(qp.pendingRdma.front().second);
    qp.pendingRdma.pop_front();

    Completion c;
    c.wrId = wr.id;
    c.qp = qp.num;
    c.isSend = true;
    c.opcode = wr.opcode;

    if (hdr.status != net::RdmaWireStatus::Ok) {
        c.status = WcStatus::RemoteAccessError;
        nic_.fw_.charge(FwStage::UpdateRx,
                        nic_.params_.costs.updateRxData);
        nic_.pushCompletion(qp.scq, c);
        return;
    }

    if (hdr.opcode == net::RdmaOpcode::ReadResp) {
        std::uint8_t *dst = nic_.mrs_.resolve(wr.sge);
        if (dst == nullptr || payload.size() != wr.sge.length) {
            // Landing buffer vanished or the responder lied about
            // the length: surface it locally.
            c.status = WcStatus::LengthError;
            c.byteLen = payload.size();
            nic_.fw_.charge(FwStage::UpdateRx,
                            nic_.params_.costs.updateRxData);
            nic_.pushCompletion(qp.scq, c);
            return;
        }
        // Put Data: land the read payload in the local buffer.
        const Tick begin =
            std::max(nic_.curTick(), nic_.fw_.busyUntil());
        const Tick fixed = nic_.fw_.clock().cyclesToTicks(
            nic_.params_.costs.putDataFixed);
        const Tick touch = nic_.fw_.clock().cyclesToTicks(
            static_cast<sim::Cycles>(
                nic_.params_.costs.touchPerByte *
                static_cast<double>(payload.size())));
        const Tick dma =
            nic_.dmaOut_.chargeAt(begin, payload.size()) - begin;
        nic_.fw_.chargeTicks(FwStage::PutData,
                             fixed + std::max(touch, dma));
        std::copy(payload.begin(), payload.end(), dst);
    }

    c.status = WcStatus::Success;
    c.byteLen = wr.sge.length;
    nic_.fw_.charge(FwStage::UpdateRx,
                    nic_.params_.costs.updateRxData);
    nic_.pushCompletion(qp.scq, c);
}

} // namespace qpip::nic
