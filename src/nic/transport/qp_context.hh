/**
 * @file
 * The NIC-side state of one QP / one SRQ: the doorbell-FSM shadows of
 * the host rings plus the protocol endpoints. These are nested types
 * of QpipNic (they predate the transport-engine split and every
 * engine touches them); the protocol *callbacks* they implement —
 * TcpObserver for the connected service, UdpEndpoint for the
 * datagram ones — immediately delegate the per-service work to the
 * owning NIC's transport engines.
 */

#pragma once

#include <algorithm>

#include "nic/qpip_nic.hh"
#include "nic/transport/rc_engine.hh"

namespace qpip::nic {

/**
 * NIC-side state of one shared receive queue: the doorbell-FSM shadow
 * of the host ring plus the attach list (in attach order, so window
 * redelivery after a replenish is deterministic). SRQ contexts are
 * pinned in SRAM — they are shared infrastructure like the demux
 * table, not per-QP state, so they don't flow through the QP context
 * cache.
 */
struct QpipNic::SrqContext
{
    SrqNum num = invalidSrq;
    SrqHostRing *ring = nullptr;
    std::uint64_t seen = 0;
    std::uint64_t consumed = 0;
    std::uint32_t postedCount = 0;
    std::uint64_t postedBytes = 0;
    std::vector<QpContext *> attached;
};

struct QpipNic::QpContext : public inet::TcpObserver,
                            public inet::UdpEndpoint
{
    QpContext(QpipNic &nic_ref, QpNum n, QpType t, QpHostRings *r,
              CqRing *s, CqRing *rc)
        : nic(nic_ref), num(n), type(t), rings(r), scq(s), rcq(rc)
    {}

    QpipNic &nic;
    QpNum num;
    QpType type;
    QpHostRings *rings;
    CqRing *scq;
    CqRing *rcq;

    /** Receive WRs come from here instead of rings->recvQ when set. */
    SrqContext *srq = nullptr;
    /** Non-zero: RDMA framing on, one-sided window in bytes. */
    std::uint32_t rdmaWindow = 0;

    inet::SockAddr local;
    bool bound = false;
    std::unique_ptr<inet::TcpConnection> conn;
    bool connected = false;
    ConnectCb connectDone;
    AcceptCb acceptDone;

    // NIC-side shadow of the host work queues (what the doorbell FSM
    // maintains in the QPIP state table).
    std::uint64_t sendSeen = 0;
    std::uint64_t sendConsumed = 0;
    std::uint64_t recvSeen = 0;
    std::uint64_t recvConsumed = 0;
    std::uint32_t postedRecvCount = 0;
    std::uint64_t postedRecvBytes = 0;

    /** What an unacked TCP message was carrying. */
    enum class TxKind : std::uint8_t {
        Send,    ///< a plain send WR: completes on the TCP ACK
        RdmaReq, ///< Write/ReadReq: completes on the explicit response
        FwResp,  ///< firmware-generated WriteAck/ReadResp: no WR
    };

    struct Inflight
    {
        std::uint64_t tag = 0;
        TxKind kind = TxKind::Send;
        SendWr wr;
    };

    // Sent-but-unacked TCP messages, ACKed in FIFO order.
    std::deque<Inflight> inflightSends;
    std::uint64_t nextTag = 1;

    // One-sided ops awaiting their response, answered in FIFO order
    // (responses ride the same TCP stream as the requests).
    std::deque<std::pair<std::uint64_t, SendWr>> pendingRdma;
    std::uint64_t nextRdmaId = 1;

    bool
    recvWrAvailable() const
    {
        return srq != nullptr ? srq->postedCount > 0
                              : postedRecvCount > 0;
    }

    // --- inet::UdpEndpoint --------------------------------------------
    void
    udpDeliver(std::vector<std::uint8_t> &&msg,
               const inet::SockAddr &from) override
    {
        nic.engineFor(type).datagramDeliver(*this, std::move(msg),
                                            from);
    }

    // --- TcpObserver --------------------------------------------------
    void
    onConnected(inet::TcpConnection &) override
    {
        connected = true;
        if (connectDone) {
            auto cb = std::move(connectDone);
            nic.schedule(nic.fw_.busyUntil(), [cb] { cb(true); });
        }
        if (acceptDone) {
            auto cb = std::move(acceptDone);
            const QpNum qp = num;
            nic.schedule(nic.fw_.busyUntil(), [cb, qp] { cb(qp); });
        }
    }

    bool
    canAcceptMessage(inet::TcpConnection &,
                     std::span<const std::uint8_t> payload) override
    {
        // One-sided ops and responses consume no receive WR: peek the
        // framing opcode and wave anything but a Send through.
        if (rdmaWindow > 0 && !payload.empty() &&
            payload[0] !=
                static_cast<std::uint8_t>(net::RdmaOpcode::Send)) {
            return true;
        }
        const bool avail = recvWrAvailable();
        if (!avail && srq != nullptr)
            nic.srqRnrHolds.inc();
        return avail;
    }

    void
    onMessage(inet::TcpConnection &conn_ref,
              std::vector<std::uint8_t> &&msg) override
    {
        if (rdmaWindow > 0) {
            nic.rcEngine_->handleRdmaMessage(*this, std::move(msg),
                                             conn_ref.tuple().remote);
            return;
        }
        nic.receiveIntoWr(*this, std::move(msg),
                          conn_ref.tuple().remote);
    }

    void
    onMessageAcked(inet::TcpConnection &, std::uint64_t tag) override
    {
        if (inflightSends.empty() || inflightSends.front().tag != tag)
            sim::panic("qp%u: send completion out of order", num);
        Inflight fly = std::move(inflightSends.front());
        inflightSends.pop_front();
        nic.touchQpContext(num);
        // Table 3 "Update" (ACK): WR status + QP state writeback.
        nic.fw_.charge(FwStage::UpdateRx, nic.costs().updateRxAck);
        if (fly.kind != TxKind::Send) {
            // One-sided requests complete on their response;
            // firmware responses carry no WR at all.
            return;
        }
        Completion c;
        c.wrId = fly.wr.id;
        c.qp = num;
        c.isSend = true;
        c.status = WcStatus::Success;
        c.byteLen = fly.wr.sge.length;
        nic.pushCompletion(scq, c);
    }

    void
    onPeerClosed(inet::TcpConnection &conn_ref) override
    {
        // A QP channel is torn down as a unit: answer the peer's FIN
        // with our own so the connection fully closes and outstanding
        // WRs flush.
        conn_ref.close();
    }

    void
    onReset(inet::TcpConnection &) override
    {
        connected = false;
        if (connectDone) {
            auto cb = std::move(connectDone);
            nic.schedule(nic.curTick(), [cb] { cb(false); });
        }
        nic.flushQp(*this, WcStatus::RemoteReset);
    }

    void
    onClosed(inet::TcpConnection &) override
    {
        connected = false;
        nic.flushQp(*this, WcStatus::Flushed);
    }

    std::uint32_t
    receiveWindow(inet::TcpConnection &) override
    {
        // Posted receive-WR bytes (own ring or the shared queue's),
        // plus the standing one-sided window on RDMA-enabled QPs so
        // Write/Read traffic flows with zero WRs posted.
        const std::uint64_t posted =
            srq != nullptr ? srq->postedBytes : postedRecvBytes;
        return static_cast<std::uint32_t>(std::min<std::uint64_t>(
            posted + rdmaWindow, 0xffffffffull));
    }
};

} // namespace qpip::nic
