/**
 * @file
 * The reliable-connected (RC) transport engine: the TCP-backed
 * message service of the paper's prototype, plus the one-sided RDMA
 * engine that rides the same stream on RDMA-enabled QPs. Moved
 * verbatim from the pre-split QpipNic — wire format and stage charge
 * sequence are byte- and timing-identical.
 */

#pragma once

#include "nic/transport/transport_engine.hh"

namespace qpip::nic {

class RcEngine : public TransportEngine
{
  public:
    using TransportEngine::TransportEngine;

    /** Frame the message (raw or RDMA Send/Write) onto the stream. */
    void transmit(QpipNic::QpContext &qp, SendWr wr,
                  std::vector<std::uint8_t> data) override;

    // --- one-sided RDMA engine ---------------------------------------
    /** Requester side of an RdmaRead WR (no payload to stage). */
    void serviceRdmaRead(QpipNic::QpContext &qp, SendWr wr);

    /** A framed message arrived on an RDMA-enabled QP's stream. */
    void handleRdmaMessage(QpipNic::QpContext &qp,
                           std::vector<std::uint8_t> msg,
                           const inet::SockAddr &from);

  private:
    void executeRdmaWrite(QpipNic::QpContext &qp,
                          const net::RdmaHeader &hdr,
                          std::span<const std::uint8_t> payload);
    void executeRdmaRead(QpipNic::QpContext &qp,
                         const net::RdmaHeader &hdr);
    void sendRdmaResponse(QpipNic::QpContext &qp, net::RdmaHeader hdr,
                          std::span<const std::uint8_t> payload);
    void completeRdmaOp(QpipNic::QpContext &qp,
                        const net::RdmaHeader &hdr,
                        std::span<const std::uint8_t> payload);
};

} // namespace qpip::nic
