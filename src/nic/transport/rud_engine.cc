#include "nic/transport/rud_engine.hh"

#include <algorithm>

#include "inet/udp.hh"
#include "net/serialize.hh"
#include "nic/transport/qp_context.hh"
#include "sim/simulation.hh"

namespace qpip::nic {

using inet::IpDatagram;
using inet::IpProto;

RudEngine::Peer &
RudEngine::peerFor(const QpContext &qp, const inet::SockAddr &peer)
{
    return state_[qp.num][peer];
}

void
RudEngine::emitFrame(QpContext &qp, const inet::SockAddr &to,
                     const std::vector<std::uint8_t> &frame)
{
    nic_.fw_.charge(FwStage::BuildTcpHdr,
                    nic_.params_.costs.buildUdpHdr);
    IpDatagram dgram;
    dgram.src = qp.local.addr;
    dgram.dst = to.addr;
    dgram.proto = IpProto::Udp;
    dgram.payload = inet::serializeUdp(qp.local.addr, to.addr,
                                       qp.local.port, to.port, frame);
    nic_.inet_.ipOutput(std::move(dgram));
}

void
RudEngine::transmit(QpContext &qp, SendWr wr,
                    std::vector<std::uint8_t> data)
{
    Peer &p = peerFor(qp, wr.remote);
    if (!p.blocked.empty() || p.window.size() >= windowLimit) {
        // Window full: park the staged WR; the ack that opens the
        // window drains the queue in order.
        p.blocked.push_back({wr, std::move(data)});
        return;
    }
    emitData(qp, p, wr, std::move(data));
}

void
RudEngine::emitData(QpContext &qp, Peer &p, SendWr wr,
                    std::vector<std::uint8_t> data)
{
    net::RudHeader h;
    h.opcode = net::RudOpcode::Data;
    h.seq = p.nextSeq;
    h.ack = p.expectedSeq - 1;

    nic_.fw_.charge(FwStage::RudExec,
                    nic_.params_.costs.rudHeaderBuild);
    auto frame = net::serializeRudMessage(h, data);

    // Oversize checks mirror the UD path: probe before committing a
    // sequence number so a rejected WR leaves no hole in the stream.
    nic_.fw_.charge(FwStage::BuildTcpHdr,
                    nic_.params_.costs.buildUdpHdr);
    IpDatagram dgram;
    dgram.src = qp.local.addr;
    dgram.dst = wr.remote.addr;
    dgram.proto = IpProto::Udp;
    dgram.payload =
        inet::serializeUdp(qp.local.addr, wr.remote.addr,
                           qp.local.port, wr.remote.port, frame);
    const auto res = nic_.inet_.ipOutput(std::move(dgram));
    nic_.fw_.charge(FwStage::UpdateTx,
                    nic_.params_.costs.updateTxData);
    if (res == inet::IpSendResult::MsgSize) {
        Completion c;
        c.wrId = wr.id;
        c.qp = qp.num;
        c.isSend = true;
        c.opcode = wr.opcode;
        c.status = WcStatus::LengthError;
        c.byteLen = wr.sge.length;
        nic_.pushCompletion(qp.scq, c);
        return;
    }
    p.window.push_back({h.seq, wr, std::move(frame)});
    ++p.nextSeq;
    if (!p.rto.pending())
        armRto(qp, p, wr.remote);
}

void
RudEngine::datagramDeliver(QpContext &qp,
                           std::vector<std::uint8_t> &&msg,
                           const inet::SockAddr &from)
{
    nic_.fw_.charge(FwStage::RudExec, nic_.params_.costs.rudParse);
    net::RudHeader h;
    std::span<const std::uint8_t> payload;
    if (!net::parseRudMessage(msg, h, payload)) {
        nic_.rudMalformed.inc();
        return;
    }
    Peer &p = peerFor(qp, from);
    processAck(qp, p, from, h.ack);
    if (h.opcode == net::RudOpcode::Ack)
        return;

    if (h.seq != p.expectedSeq || p.holding) {
        // Go-back-N receiver: anything but the next in-order
        // sequence is dropped; the sender's timer recovers it. A
        // duplicate of old data still earns an ack so a sender whose
        // acks were lost can advance.
        nic_.rudSeqDrops.inc();
        if (h.seq < p.expectedSeq)
            sendAck(qp, p, from);
        return;
    }
    if (!qp.recvWrAvailable()) {
        // Receiver-not-ready: reliable service must not drop
        // in-order data. Park it (one datagram per peer — go-back-N
        // admits no more) and withhold the ack; delivery resumes
        // from recvReplenished().
        if (qp.srq != nullptr)
            nic_.srqRnrHolds.inc();
        else
            nic_.rudRnrHolds.inc();
        p.holding = true;
        p.held.assign(payload.begin(), payload.end());
        return;
    }
    ++p.expectedSeq;
    nic_.receiveIntoWr(
        qp, std::vector<std::uint8_t>(payload.begin(), payload.end()),
        from);
    sendAck(qp, p, from);
}

void
RudEngine::processAck(QpContext &qp, Peer &p,
                      const inet::SockAddr &from, std::uint32_t ack)
{
    if (ack <= p.ackedSeq)
        return;
    nic_.fw_.charge(FwStage::RudExec,
                    nic_.params_.costs.rudAckProcess);
    p.ackedSeq = ack;
    while (!p.window.empty() && p.window.front().seq <= ack) {
        Unacked u = std::move(p.window.front());
        p.window.pop_front();
        Completion c;
        c.wrId = u.wr.id;
        c.qp = qp.num;
        c.isSend = true;
        c.opcode = u.wr.opcode;
        c.status = WcStatus::Success;
        c.byteLen = u.wr.sge.length;
        nic_.pushCompletion(qp.scq, c);
    }
    // Forward progress resets the backoff and restarts the timer
    // for whatever is still outstanding.
    p.rtoShift = 0;
    if (p.rto.pending())
        p.rto.cancel();
    if (!p.window.empty())
        armRto(qp, p, from);
    while (!p.blocked.empty() && p.window.size() < windowLimit) {
        PendingSend ps = std::move(p.blocked.front());
        p.blocked.pop_front();
        emitData(qp, p, ps.wr, std::move(ps.data));
    }
}

void
RudEngine::sendAck(QpContext &qp, Peer &p, const inet::SockAddr &to)
{
    nic_.fw_.charge(FwStage::RudExec,
                    nic_.params_.costs.rudAckBuild);
    net::RudHeader h;
    h.opcode = net::RudOpcode::Ack;
    h.ack = p.expectedSeq - 1;
    const auto frame = net::serializeRudMessage(h, {});

    nic_.fw_.charge(FwStage::BuildTcpHdr,
                    nic_.params_.costs.buildUdpHdr);
    IpDatagram dgram;
    dgram.src = qp.local.addr;
    dgram.dst = to.addr;
    dgram.proto = IpProto::Udp;
    dgram.payload = inet::serializeUdp(qp.local.addr, to.addr,
                                       qp.local.port, to.port, frame);
    nic_.inet_.ipOutput(std::move(dgram));
    nic_.fw_.charge(FwStage::UpdateTx,
                    nic_.params_.costs.updateTxAck);
    nic_.rudAcksSent.inc();
}

void
RudEngine::armRto(const QpContext &qp, Peer &p,
                  const inet::SockAddr &to)
{
    const auto &tcp = nic_.params_.tcp;
    const std::uint32_t shift = std::min<std::uint32_t>(p.rtoShift, 16);
    const sim::Tick delay =
        std::min(tcp.maxRto, tcp.minRto << shift);
    p.rto = nic_.scheduleTimer(
        delay, [this, num = qp.num, to]() { rtoFire(num, to); });
}

void
RudEngine::rtoFire(QpNum qp, const inet::SockAddr &to)
{
    QpContext *ctx = nic_.lookupQp(qp);
    if (ctx == nullptr)
        return;
    auto qit = state_.find(qp);
    if (qit == state_.end())
        return;
    auto pit = qit->second.find(to);
    if (pit == qit->second.end())
        return;
    Peer &p = pit->second;
    if (p.window.empty())
        return;
    if (p.rtoShift < 16)
        ++p.rtoShift;
    // Go-back-N: re-emit the whole unacked window. The retained
    // frames carry their original (possibly stale) piggybacked acks;
    // cumulative acks make that harmless.
    for (const Unacked &u : p.window) {
        nic_.rudRetransmits.inc();
        emitFrame(*ctx, to, u.frame);
        nic_.fw_.charge(FwStage::UpdateTx,
                        nic_.params_.costs.updateTxData);
    }
    armRto(*ctx, p, to);
}

void
RudEngine::recvReplenished(QpContext &qp)
{
    auto qit = state_.find(qp.num);
    if (qit == state_.end())
        return;
    for (auto &[addr, p] : qit->second) {
        if (!p.holding)
            continue;
        if (!qp.recvWrAvailable())
            break;
        p.holding = false;
        ++p.expectedSeq;
        nic_.receiveIntoWr(qp, std::move(p.held), addr);
        p.held = {};
        sendAck(qp, p, addr);
    }
}

void
RudEngine::flushed(QpContext &qp, WcStatus status)
{
    auto qit = state_.find(qp.num);
    if (qit == state_.end())
        return;
    for (auto &[addr, p] : qit->second) {
        if (p.rto.pending())
            p.rto.cancel();
        for (const Unacked &u : p.window) {
            Completion c;
            c.wrId = u.wr.id;
            c.qp = qp.num;
            c.isSend = true;
            c.opcode = u.wr.opcode;
            c.status = status;
            nic_.pushCompletion(qp.scq, c);
        }
        for (const PendingSend &ps : p.blocked) {
            Completion c;
            c.wrId = ps.wr.id;
            c.qp = qp.num;
            c.isSend = true;
            c.opcode = ps.wr.opcode;
            c.status = status;
            nic_.pushCompletion(qp.scq, c);
        }
    }
    state_.erase(qit);
}

} // namespace qpip::nic
