#include "nic/transport/ud_engine.hh"

#include "inet/udp.hh"
#include "nic/transport/qp_context.hh"
#include "sim/simulation.hh"

namespace qpip::nic {

using inet::IpDatagram;
using inet::IpProto;

void
UdEngine::transmit(QpipNic::QpContext &qp, SendWr wr,
                   std::vector<std::uint8_t> data)
{
    // Build UDP Hdr (charged under the header-build stage).
    nic_.fw_.charge(FwStage::BuildTcpHdr,
                    nic_.params_.costs.buildUdpHdr);
    IpDatagram dgram;
    dgram.src = qp.local.addr;
    dgram.dst = wr.remote.addr;
    dgram.proto = IpProto::Udp;
    dgram.payload =
        inet::serializeUdp(qp.local.addr, wr.remote.addr,
                           qp.local.port, wr.remote.port, data);
    const auto res = nic_.inet_.ipOutput(std::move(dgram));

    // "As soon as a UDP message is sent, the associated send WR is
    // marked as complete." An oversized message reports the verbs
    // moral equivalent of EMSGSIZE.
    nic_.fw_.charge(FwStage::UpdateTx,
                    nic_.params_.costs.updateTxData);
    Completion c;
    c.wrId = wr.id;
    c.qp = qp.num;
    c.isSend = true;
    c.status = res == inet::IpSendResult::MsgSize
                   ? WcStatus::LengthError
                   : WcStatus::Success;
    c.byteLen = wr.sge.length;
    nic_.pushCompletion(qp.scq, c);
}

void
UdEngine::datagramDeliver(QpipNic::QpContext &qp,
                          std::vector<std::uint8_t> &&msg,
                          const inet::SockAddr &from)
{
    if (!qp.recvWrAvailable()) {
        // Unreliable service: no posted WR, the datagram is gone.
        if (qp.srq != nullptr)
            nic_.srqEmptyDrops.inc();
        else
            nic_.udpNoWrDrops.inc();
        return;
    }
    nic_.receiveIntoWr(qp, std::move(msg), from);
}

void
UdEngine::bound(QpipNic::QpContext &qp)
{
    if (!nic_.inet_.bindUdp(qp.local.port, &qp)) {
        sim::fatal("udp port %u already bound on %s", qp.local.port,
                   nic_.name().c_str());
    }
}

void
UdEngine::unbound(QpipNic::QpContext &qp)
{
    nic_.inet_.unbindUdp(qp.local.port);
}

} // namespace qpip::nic
