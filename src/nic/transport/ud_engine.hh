/**
 * @file
 * The unreliable-datagram (UD) transport engine: one QP message per
 * UDP datagram, fire-and-forget. Moved verbatim from the pre-split
 * QpipNic — wire format and stage charge sequence are byte- and
 * timing-identical.
 */

#pragma once

#include "nic/transport/transport_engine.hh"

namespace qpip::nic {

class UdEngine : public TransportEngine
{
  public:
    using TransportEngine::TransportEngine;

    /** Wrap the payload in UDP/IP and complete the WR immediately. */
    void transmit(QpipNic::QpContext &qp, SendWr wr,
                  std::vector<std::uint8_t> data) override;

    /** Land the datagram in a posted WR, or drop it (unreliable). */
    void datagramDeliver(QpipNic::QpContext &qp,
                         std::vector<std::uint8_t> &&msg,
                         const inet::SockAddr &from) override;

    /** Install / remove the UDP port demux entry. */
    void bound(QpipNic::QpContext &qp) override;
    void unbound(QpipNic::QpContext &qp) override;
};

} // namespace qpip::nic
