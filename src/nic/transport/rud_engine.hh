/**
 * @file
 * The reliable-datagram (RUD) transport engine: reliable, in-order
 * message delivery over the UD datagram path. One RUD QP talks to any
 * number of peers; all reliability state (sequence numbers, unacked
 * windows, retransmit timers, reassembly holds) lives in per-peer
 * records in what models *host* memory, so the QP context the NIC
 * caches stays small and a single context serves thousands of peers
 * without thrashing the context cache.
 *
 * Wire format (see net/serialize.hh): every datagram carries a
 * RudHeader. Data datagrams are sequenced per (QP, peer) starting at
 * 1 and piggyback a cumulative ack; standalone Ack datagrams carry
 * only the cumulative ack and acknowledge each delivered datagram
 * immediately, so the receive-side cost per datagram is constant
 * regardless of how many peers share the QP — the scale-out curve
 * stays flat. Loss recovery is go-back-N: a single
 * retransmit timer per peer, exponential backoff bounded by the
 * firmware TCP config's [minRto, maxRto].
 */

#pragma once

#include <deque>
#include <map>

#include "nic/transport/ud_engine.hh"
#include "sim/event_queue.hh"

namespace qpip::nic {

class RudEngine : public UdEngine
{
  public:
    using UdEngine::UdEngine;

    /** Max unacked Data datagrams per (QP, peer). */
    static constexpr std::size_t windowLimit = 64;

    void transmit(QpipNic::QpContext &qp, SendWr wr,
                  std::vector<std::uint8_t> data) override;
    void datagramDeliver(QpipNic::QpContext &qp,
                         std::vector<std::uint8_t> &&msg,
                         const inet::SockAddr &from) override;
    void recvReplenished(QpipNic::QpContext &qp) override;
    void flushed(QpipNic::QpContext &qp, WcStatus status) override;

    // bound()/unbound() inherit the UD engine's port demux plumbing.

  private:
    /** A send WR waiting for window space (payload already staged). */
    struct PendingSend
    {
        SendWr wr;
        std::vector<std::uint8_t> data;
    };

    /** An emitted-but-unacked Data datagram (RUD frame retained). */
    struct Unacked
    {
        std::uint32_t seq = 0;
        SendWr wr;
        std::vector<std::uint8_t> frame;
    };

    /** Host-memory reliability record for one (QP, peer) pair. */
    struct Peer
    {
        // Sender side.
        std::uint32_t nextSeq = 1;  ///< next sequence to emit
        std::uint32_t ackedSeq = 0; ///< highest cumulative ack seen
        std::uint32_t rtoShift = 0; ///< backoff exponent
        std::deque<Unacked> window;
        std::deque<PendingSend> blocked;
        sim::EventHandle rto;

        // Receiver side.
        std::uint32_t expectedSeq = 1; ///< next in-order sequence
        bool holding = false; ///< in-order data parked: no recv WR
        std::vector<std::uint8_t> held;
    };

    Peer &peerFor(const QpipNic::QpContext &qp,
                  const inet::SockAddr &peer);
    void emitData(QpipNic::QpContext &qp, Peer &p, SendWr wr,
                  std::vector<std::uint8_t> data);
    void processAck(QpipNic::QpContext &qp, Peer &p,
                    const inet::SockAddr &from, std::uint32_t ack);
    void sendAck(QpipNic::QpContext &qp, Peer &p,
                 const inet::SockAddr &to);
    void armRto(const QpipNic::QpContext &qp, Peer &p,
                const inet::SockAddr &to);
    void rtoFire(QpNum qp, const inet::SockAddr &to);

    /** Send one Data frame's UDP/IP encapsulation (fresh or retx). */
    void emitFrame(QpipNic::QpContext &qp, const inet::SockAddr &to,
                   const std::vector<std::uint8_t> &frame);

    /**
     * Per-QP, per-peer reliability state. Ordered maps: iteration
     * (replenish scans, flushes) must be deterministic.
     */
    std::map<QpNum, std::map<inet::SockAddr, Peer>> state_;
};

} // namespace qpip::nic
