#include "nic/transport/transport_engine.hh"

#include "nic/transport/qp_context.hh"

namespace qpip::nic {

void
TransportEngine::datagramDeliver(QpipNic::QpContext &qp,
                                 std::vector<std::uint8_t> &&,
                                 const inet::SockAddr &)
{
    sim::panic("qp%u: datagram delivered to a non-datagram transport",
               qp.num);
}

void
TransportEngine::bound(QpipNic::QpContext &)
{
}

void
TransportEngine::unbound(QpipNic::QpContext &)
{
}

void
TransportEngine::recvReplenished(QpipNic::QpContext &qp)
{
    // Connected service: the receive window just grew; any message
    // the TCP engine held back may be deliverable now.
    if (qp.conn)
        qp.conn->onReceiveWindowGrew();
}

void
TransportEngine::flushed(QpipNic::QpContext &, WcStatus)
{
}

} // namespace qpip::nic
