/**
 * @file
 * Human-readable statistics reports: the firmware occupancy table
 * (the same instrumentation that backs Tables 2/3) and a TCP counter
 * dump. Both render from the stat registry by path prefix, so any
 * firmware processor or connection can be reported without access to
 * the owning object. Examples and ad-hoc experiments print these; the
 * benches query the registry directly.
 */

#pragma once

#include <string>

#include "sim/stat_registry.hh"

namespace qpip::nic {

/**
 * Render the per-stage occupancy table of a firmware processor whose
 * stats live under @p fw_prefix (e.g. "host0.qnic.fw").
 */
std::string fwOccupancyReport(const sim::StatRegistry &stats,
                              const std::string &fw_prefix);

/**
 * Render a TCP connection's counters registered under @p prefix
 * (e.g. "host0.qnic.qp1.tcp").
 */
std::string tcpStatsReport(const sim::StatRegistry &stats,
                           const std::string &prefix);

} // namespace qpip::nic
