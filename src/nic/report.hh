/**
 * @file
 * Human-readable statistics reports: the firmware occupancy table
 * (the same instrumentation that backs Tables 2/3) and a TCP counter
 * dump. Examples and ad-hoc experiments print these; the benches use
 * the raw stats directly.
 */

#ifndef QPIP_NIC_REPORT_HH
#define QPIP_NIC_REPORT_HH

#include <string>

#include "inet/tcp_conn.hh"
#include "nic/lanai.hh"

namespace qpip::nic {

/** Render the per-stage occupancy table of a firmware processor. */
std::string fwOccupancyReport(const LanaiProcessor &fw);

/** Render a TCP connection's counters. */
std::string tcpStatsReport(const inet::TcpStats &stats);

} // namespace qpip::nic

#endif // QPIP_NIC_REPORT_HH
