#include "nic/lanai.hh"

#include <algorithm>

#include "sim/simulation.hh"
#include "sim/trace.hh"

namespace qpip::nic {

const char *
fwStageName(FwStage s)
{
    switch (s) {
      case FwStage::DoorbellProcess: return "Doorbell Process";
      case FwStage::Schedule: return "Schedule";
      case FwStage::GetWr: return "Get WR";
      case FwStage::GetData: return "Get Data";
      case FwStage::BuildTcpHdr: return "Build TCP Hdr";
      case FwStage::BuildIpHdr: return "Build IP Hdr";
      case FwStage::MediaSend: return "Send";
      case FwStage::UpdateTx: return "Update";
      case FwStage::MediaRcv: return "Media Rcv";
      case FwStage::IpParse: return "IP Parse";
      case FwStage::TcpParse: return "TCP Parse";
      case FwStage::UdpParse: return "UDP Parse";
      case FwStage::PutData: return "Put Data";
      case FwStage::UpdateRx: return "Update";
      case FwStage::Checksum: return "Checksum";
      case FwStage::Fragment: return "Fragment";
      case FwStage::Reassembly: return "Reassembly";
      case FwStage::RdmaExec: return "RDMA Exec";
      case FwStage::RudExec: return "RUD Exec";
      case FwStage::CtxFetch: return "Ctx Fetch";
      case FwStage::Mgmt: return "Mgmt";
      case FwStage::Timer: return "Timer";
      case FwStage::NumStages: break;
    }
    return "?";
}

const char *
fwStageTag(FwStage s)
{
    switch (s) {
      case FwStage::DoorbellProcess: return "doorbellProcess";
      case FwStage::Schedule: return "schedule";
      case FwStage::GetWr: return "getWr";
      case FwStage::GetData: return "getData";
      case FwStage::BuildTcpHdr: return "buildTcpHdr";
      case FwStage::BuildIpHdr: return "buildIpHdr";
      case FwStage::MediaSend: return "mediaSend";
      case FwStage::UpdateTx: return "updateTx";
      case FwStage::MediaRcv: return "mediaRcv";
      case FwStage::IpParse: return "ipParse";
      case FwStage::TcpParse: return "tcpParse";
      case FwStage::UdpParse: return "udpParse";
      case FwStage::PutData: return "putData";
      case FwStage::UpdateRx: return "updateRx";
      case FwStage::Checksum: return "checksum";
      case FwStage::Fragment: return "fragment";
      case FwStage::Reassembly: return "reassembly";
      case FwStage::RdmaExec: return "rdmaExec";
      case FwStage::RudExec: return "rudExec";
      case FwStage::CtxFetch: return "ctxFetch";
      case FwStage::Mgmt: return "mgmt";
      case FwStage::Timer: return "timer";
      case FwStage::NumStages: break;
    }
    return "?";
}

LanaiProcessor::LanaiProcessor(sim::Simulation &sim, std::string name,
                               std::uint64_t freq_hz)
    : SimObject(sim, std::move(name)), clock_(freq_hz)
{
    for (std::size_t i = 0; i < numFwStages; ++i) {
        regStat(std::string("stage.") +
                    fwStageTag(static_cast<FwStage>(i)),
                stats_[i]);
    }
    regStat("busyTicks", busyTicks_);
}

void
LanaiProcessor::chargeTicks(FwStage stage, sim::Tick ticks)
{
    const sim::Tick start = std::max(curTick(), busyUntil_);
    busyUntil_ = start + ticks;
    busyTicks_.inc(ticks);
    stats_[static_cast<std::size_t>(stage)].sample(
        sim::ticksToUs(ticks));
    if (tracer().enabled())
        tracer().span(name(), fwStageName(stage), start, ticks);
}

void
LanaiProcessor::charge(FwStage stage, sim::Cycles cycles)
{
    chargeTicks(stage, clock_.cyclesToTicks(cycles));
}

void
LanaiProcessor::resetStats()
{
    for (auto &s : stats_)
        s.reset();
}

} // namespace qpip::nic
