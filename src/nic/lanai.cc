#include "nic/lanai.hh"

#include <algorithm>

namespace qpip::nic {

const char *
fwStageName(FwStage s)
{
    switch (s) {
      case FwStage::DoorbellProcess: return "Doorbell Process";
      case FwStage::Schedule: return "Schedule";
      case FwStage::GetWr: return "Get WR";
      case FwStage::GetData: return "Get Data";
      case FwStage::BuildTcpHdr: return "Build TCP Hdr";
      case FwStage::BuildIpHdr: return "Build IP Hdr";
      case FwStage::MediaSend: return "Send";
      case FwStage::UpdateTx: return "Update";
      case FwStage::MediaRcv: return "Media Rcv";
      case FwStage::IpParse: return "IP Parse";
      case FwStage::TcpParse: return "TCP Parse";
      case FwStage::UdpParse: return "UDP Parse";
      case FwStage::PutData: return "Put Data";
      case FwStage::UpdateRx: return "Update";
      case FwStage::Checksum: return "Checksum";
      case FwStage::Fragment: return "Fragment";
      case FwStage::Reassembly: return "Reassembly";
      case FwStage::Mgmt: return "Mgmt";
      case FwStage::Timer: return "Timer";
      case FwStage::NumStages: break;
    }
    return "?";
}

LanaiProcessor::LanaiProcessor(sim::Simulation &sim, std::string name,
                               std::uint64_t freq_hz)
    : SimObject(sim, std::move(name)), clock_(freq_hz)
{}

void
LanaiProcessor::chargeTicks(FwStage stage, sim::Tick ticks)
{
    const sim::Tick start = std::max(curTick(), busyUntil_);
    busyUntil_ = start + ticks;
    busyTotal_ += ticks;
    stats_[static_cast<std::size_t>(stage)].sample(
        sim::ticksToUs(ticks));
}

void
LanaiProcessor::charge(FwStage stage, sim::Cycles cycles)
{
    chargeTicks(stage, clock_.cyclesToTicks(cycles));
}

void
LanaiProcessor::exec(FwStage stage, sim::Cycles cycles,
                     std::function<void()> then)
{
    charge(stage, cycles);
    schedule(busyUntil_, std::move(then));
}

void
LanaiProcessor::resetStats()
{
    for (auto &s : stats_)
        s.reset();
}

} // namespace qpip::nic
