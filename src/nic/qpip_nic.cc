#include "nic/qpip_nic.hh"

#include <algorithm>

#include "nic/transport/qp_context.hh"
#include "nic/transport/rc_engine.hh"
#include "nic/transport/rud_engine.hh"
#include "nic/transport/ud_engine.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace qpip::nic {

using inet::IpDatagram;
using inet::IpProto;
using sim::Tick;

const char *
wcStatusName(WcStatus s)
{
    switch (s) {
      case WcStatus::Success: return "success";
      case WcStatus::LengthError: return "length-error";
      case WcStatus::Flushed: return "flushed";
      case WcStatus::RemoteReset: return "remote-reset";
      case WcStatus::RemoteAccessError: return "remote-access-error";
    }
    return "?";
}

const char *
wrOpcodeName(WrOpcode op)
{
    switch (op) {
      case WrOpcode::Send: return "send";
      case WrOpcode::RdmaWrite: return "rdma-write";
      case WrOpcode::RdmaRead: return "rdma-read";
    }
    return "?";
}

inet::TcpConfig
QpipNicParams::defaultFirmwareTcpConfig()
{
    inet::TcpConfig cfg;
    cfg.messageMode = true;
    cfg.reassembly = false; // prototype subset: no OOO reassembly
    cfg.delayedAck = false; // SAN latency: ACK every message
    cfg.noDelay = true;
    cfg.mss = 16384;
    cfg.windowScale = 8;
    cfg.tsGranularity = sim::oneUs; // fine-grained firmware clock
    cfg.minRto = 5 * sim::oneMs;    // NIC-resident runtime timers
    cfg.maxRto = 10 * sim::oneSec;
    cfg.msl = 50 * sim::oneMs;      // SAN-scale TIME_WAIT
    cfg.initialCwndSegs = 4;
    cfg.maxCwndSegs = 256;
    return cfg;
}

// ---------------------------------------------------------------------
// Construction / management FSM
// ---------------------------------------------------------------------

QpipNic::QpipNic(sim::Simulation &sim, std::string name, net::Link &link,
                 net::NodeId node, QpipNicParams params)
    : SimObject(sim, std::move(name)), link_(link), node_(node),
      params_(params),
      fw_(sim, this->name() + ".fw", params.costs.freqHz),
      dmaIn_(sim, this->name() + ".dma_in", params.dma),
      dmaOut_(sim, this->name() + ".dma_out", params.dma),
      doorbells_(sim, this->name() + ".doorbells", params.doorbellCap),
      qpCache_(params.qpCacheCapacity, params.qpCacheBytes),
      inet_(*this, params.reassExpiry),
      badPackets(inet_.badFrames), noQpDrops(inet_.noMatchDrops)
{
    // Force the prototype's transport subset regardless of overrides.
    params_.tcp.messageMode = true;
    params_.tcp.reassembly = false;
    regStat("badPackets", badPackets);
    regStat("noQpDrops", noQpDrops);
    regStat("udpNoWrDrops", udpNoWrDrops);
    regStat("cqOverflows", cqOverflows);
    regStat("rdma.writes", rdmaWrites);
    regStat("rdma.reads", rdmaReads);
    regStat("rdma.remoteErrors", rdmaRemoteErrors);
    regStat("rdma.malformed", rdmaMalformed);
    regStat("srq.rnrHolds", srqRnrHolds);
    regStat("srq.emptyDrops", srqEmptyDrops);
    regStat("rud.retransmits", rudRetransmits);
    regStat("rud.acksSent", rudAcksSent);
    regStat("rud.seqDrops", rudSeqDrops);
    regStat("rud.rnrHolds", rudRnrHolds);
    regStat("rud.malformed", rudMalformed);
    regStat("qpCache.hits", qpCache_.hits);
    regStat("qpCache.misses", qpCache_.misses);
    regStat("qpCache.evictions", qpCache_.evictions);
    regStat("qpCache.writebacks", ctxWritebacks);
    regStat("reass.fragmentsIn", inet_.reassembler().fragmentsIn);
    regStat("reass.reassembled", inet_.reassembler().reassembled);
    regStat("reass.expired", inet_.reassembler().expired);
    regStat("cq.notifies", cqNotifies);
    regStat("cq.coalesced", cqCoalesced);
    if (params_.doorbellCoalesceCycles > 0) {
        doorbells_.coalesceWindow =
            fw_.clock().cyclesToTicks(params_.doorbellCoalesceCycles);
    }
    rcEngine_ = std::make_unique<RcEngine>(*this);
    udEngine_ = std::make_unique<UdEngine>(*this);
    rudEngine_ = std::make_unique<RudEngine>(*this);
    link_.attach(0, *this);
    doorbells_.setDrainHook([this] {
        if (!drainActive_) {
            drainActive_ = true;
            doorbellDrain();
        }
    });
}

QpipNic::~QpipNic()
{
    // Expire the liveness token first: QueuePair/MemoryRegion
    // destructors reached from the QP contexts below must not call
    // back into this object.
    aliveToken_.reset();
}

TransportEngine &
QpipNic::engineFor(QpType type)
{
    switch (type) {
      case QpType::ReliableTcp: return *rcEngine_;
      case QpType::UnreliableUdp: return *udEngine_;
      case QpType::ReliableDatagram: return *rudEngine_;
    }
    sim::panic("engineFor: unknown qp type %d",
               static_cast<int>(type));
}

void
QpipNic::setAddress(const inet::InetAddr &addr)
{
    addr_ = addr;
}

MrKey
QpipNic::registerMemory(std::uint8_t *base, std::size_t bytes,
                        MrAccess access)
{
    fw_.charge(FwStage::Mgmt, params_.costs.mgmtCommand);
    return mrs_.registerMemory(base, bytes, access);
}

void
QpipNic::deregisterMemory(MrKey key)
{
    fw_.charge(FwStage::Mgmt, params_.costs.mgmtCommand);
    mrs_.deregister(key);
}

QpNum
QpipNic::createQp(QpType type, QpHostRings *rings, CqRing *scq,
                  CqRing *rcq, const QpCreateAttrs &attrs)
{
    fw_.charge(FwStage::Mgmt, params_.costs.mgmtCommand);
    const QpNum num = nextQpNum_++;
    auto ctx = std::make_unique<QpContext>(*this, num, type, rings,
                                           scq, rcq);
    if (attrs.srq != invalidSrq) {
        auto it = srqs_.find(attrs.srq);
        if (it == srqs_.end())
            sim::fatal("createQp: unknown srq %u", attrs.srq);
        ctx->srq = it->second.get();
        ctx->srq->attached.push_back(ctx.get());
    }
    if (attrs.rdmaWindowBytes > 0) {
        if (type != QpType::ReliableTcp)
            sim::fatal("createQp: RDMA framing needs a reliable QP");
        ctx->rdmaWindow = attrs.rdmaWindowBytes;
    }
    qps_[num] = std::move(ctx);
    // The management FSM builds the context in SRAM; whatever it
    // displaces goes back to host memory (if dirty).
    const auto ev = qpCache_.install(num, qpContextBytes(type));
    if (ev.dirtyEvictions > 0) {
        ctxWritebacks.inc(ev.dirtyEvictions);
        fw_.charge(FwStage::CtxFetch, ctxMissCycles(ev));
    }
    return num;
}

void
QpipNic::destroyQp(QpNum qp)
{
    auto *ctx = lookupQp(qp);
    if (ctx == nullptr)
        return;
    fw_.charge(FwStage::Mgmt, params_.costs.mgmtCommand);
    if (ctx->conn) {
        connOwner_.erase(ctx->conn.get());
        inet_.unregisterConn(ctx->conn->tuple());
        ctx->conn->abort();
    }
    if (ctx->bound)
        engineFor(ctx->type).unbound(*ctx);
    flushQp(*ctx, WcStatus::Flushed);
    if (ctx->srq != nullptr) {
        auto &att = ctx->srq->attached;
        att.erase(std::remove(att.begin(), att.end(), ctx), att.end());
    }
    qpCache_.remove(qp);
    qps_.erase(qp);
}

SrqNum
QpipNic::createSrq(SrqHostRing *ring)
{
    fw_.charge(FwStage::Mgmt, params_.costs.mgmtCommand);
    const SrqNum num = nextSrqNum_++;
    auto ctx = std::make_unique<SrqContext>();
    ctx->num = num;
    ctx->ring = ring;
    srqs_[num] = std::move(ctx);
    return num;
}

void
QpipNic::destroySrq(SrqNum srq)
{
    auto it = srqs_.find(srq);
    if (it == srqs_.end())
        return;
    if (!it->second->attached.empty())
        sim::fatal("destroySrq: srq %u still has %zu attached QPs",
                   srq, it->second->attached.size());
    fw_.charge(FwStage::Mgmt, params_.costs.mgmtCommand);
    srqs_.erase(it);
}

void
QpipNic::bindLocal(QpNum qp, std::uint16_t port)
{
    auto *ctx = lookupQp(qp);
    if (ctx == nullptr)
        sim::fatal("bindLocal: unknown qp %u", qp);
    fw_.charge(FwStage::Mgmt, params_.costs.mgmtCommand);
    ctx->local = inet::SockAddr{addr_, port};
    ctx->bound = true;
    engineFor(ctx->type).bound(*ctx);
}

void
QpipNic::connect(QpNum qp, const inet::SockAddr &remote, ConnectCb done)
{
    auto *ctx = lookupQp(qp);
    if (ctx == nullptr || ctx->type != QpType::ReliableTcp)
        sim::fatal("connect: bad qp %u", qp);
    if (!ctx->bound) {
        ctx->local = inet::SockAddr{addr_, ephemeralPort_++};
        ctx->bound = true;
    }
    ctx->connectDone = std::move(done);
    fw_.exec(FwStage::Mgmt, params_.costs.mgmtCommand,
             [this, ctx, remote] {
                 // Destroy any previous connection first so its stat
                 // paths vacate before the new one claims them.
                 if (ctx->conn) {
                     connOwner_.erase(ctx->conn.get());
                     inet_.unregisterConn(ctx->conn->tuple());
                     ctx->conn.reset();
                 }
                 ctx->conn = std::make_unique<inet::TcpConnection>(
                     inet_, *ctx, params_.tcp);
                 ctx->conn->stats().registerIn(
                     statRegistry(), name() + ".qp" +
                                         std::to_string(ctx->num) +
                                         ".tcp");
                 inet::FourTuple t{ctx->local, remote};
                 inet_.registerConn(t, ctx->conn.get());
                 connOwner_[ctx->conn.get()] = ctx;
                 ctx->conn->openActive(ctx->local, remote);
             });
}

void
QpipNic::acceptOn(std::uint16_t port, QpNum qp, AcceptCb done)
{
    auto *ctx = lookupQp(qp);
    if (ctx == nullptr || ctx->type != QpType::ReliableTcp)
        sim::fatal("acceptOn: bad qp %u", qp);
    fw_.charge(FwStage::Mgmt, params_.costs.mgmtCommand);
    ctx->acceptDone = std::move(done);
    listeners_[port].push_back(PendingAccept{qp, nullptr});
}

void
QpipNic::disconnect(QpNum qp)
{
    auto *ctx = lookupQp(qp);
    if (ctx == nullptr || !ctx->conn)
        return;
    fw_.exec(FwStage::Mgmt, params_.costs.mgmtCommand, [ctx] {
        if (ctx->conn)
            ctx->conn->close();
    });
}

QpipNic::QpContext *
QpipNic::lookupQp(QpNum qp)
{
    auto it = qps_.find(qp);
    return it == qps_.end() ? nullptr : it->second.get();
}

inet::TcpConnection *
QpipNic::connectionOf(QpNum qp)
{
    auto *ctx = lookupQp(qp);
    return ctx != nullptr ? ctx->conn.get() : nullptr;
}

// ---------------------------------------------------------------------
// Doorbell FSM
// ---------------------------------------------------------------------

void
QpipNic::postDoorbell(QpNum qp, bool is_send, std::uint32_t wr_count)
{
    doorbells_.ring(Doorbell{qp, is_send, false, wr_count});
}

void
QpipNic::postSrqDoorbell(SrqNum srq, std::uint32_t wr_count)
{
    doorbells_.ring(Doorbell{srq, false, true, wr_count});
}

void
QpipNic::doorbellDrain()
{
    Doorbell db;
    if (!doorbells_.pop(db)) {
        drainActive_ = false;
        return;
    }
    sim::Cycles c = params_.costs.doorbellProcess;
    if (!params_.costs.hwDoorbell) {
        c = static_cast<sim::Cycles>(static_cast<double>(c) *
                                     params_.costs.swDoorbellFactor);
    }
    // A batch record (chained post, or rings folded by the coalescing
    // window) pays the full pass once plus a cheap per-WR increment.
    // Gated on the record's own count — a singleton record whose
    // drain happens to see several fresh WRs (burst of singleton
    // rings) keeps the legacy one-pass-per-record cost.
    if (db.wrCount > 1) {
        c += params_.costs.doorbellPerWr *
             static_cast<sim::Cycles>(db.wrCount - 1);
    }
    fw_.exec(FwStage::DoorbellProcess, c, [this, db] {
        if (db.isSrq) {
            auto it = srqs_.find(db.qp);
            if (it != srqs_.end()) {
                auto &srq = *it->second;
                const std::uint64_t total =
                    srq.consumed + srq.ring->recvQ.size();
                const std::uint64_t fresh = total - srq.seen;
                srq.seen = total;
                const auto &q = srq.ring->recvQ;
                for (std::uint64_t i = 0; i < fresh; ++i) {
                    const auto &wr = q[q.size() - fresh + i];
                    ++srq.postedCount;
                    srq.postedBytes += wr.sge.length;
                }
                if (fresh > 0) {
                    // Replenish fan-out, in attach order: any held
                    // message on an attached transport may land now.
                    for (auto *ctx : srq.attached)
                        engineFor(ctx->type).recvReplenished(*ctx);
                }
            }
        } else if (auto *ctx = lookupQp(db.qp); ctx != nullptr) {
            touchQpContext(db.qp);
            if (db.isSend) {
                const std::uint64_t total =
                    ctx->sendConsumed + ctx->rings->sendQ.size();
                const std::uint64_t fresh = total - ctx->sendSeen;
                ctx->sendSeen = total;
                if (db.wrCount > 1) {
                    // Batch record: one scheduler pass consumes the
                    // whole fresh run.
                    if (fresh > 0)
                        scheduleSendService(*ctx, fresh);
                } else {
                    for (std::uint64_t i = 0; i < fresh; ++i)
                        scheduleSendService(*ctx);
                }
            } else {
                const std::uint64_t total =
                    ctx->recvConsumed + ctx->rings->recvQ.size();
                const std::uint64_t fresh = total - ctx->recvSeen;
                ctx->recvSeen = total;
                // The new WRs sit at the back of the host ring.
                const auto &q = ctx->rings->recvQ;
                for (std::uint64_t i = 0; i < fresh; ++i) {
                    const auto &wr = q[q.size() - fresh + i];
                    ++ctx->postedRecvCount;
                    ctx->postedRecvBytes += wr.sge.length;
                }
                if (fresh > 0)
                    engineFor(ctx->type).recvReplenished(*ctx);
            }
        }
        doorbellDrain();
    });
}

void
QpipNic::touchQpContext(QpNum qp, bool dirty)
{
    if (!qpCache_.enabled())
        return;
    auto *ctx = lookupQp(qp);
    const std::uint32_t bytes =
        ctx != nullptr ? qpContextBytes(ctx->type) : qpContextRefBytes;
    const auto t = qpCache_.touch(qp, bytes, dirty);
    if (t.hit)
        return;
    if (t.dirtyEvictions > 0)
        ctxWritebacks.inc(t.dirtyEvictions);
    fw_.charge(FwStage::CtxFetch, ctxMissCycles(t));
}

sim::Cycles
QpipNic::ctxMissCycles(const QpContextCache::Touch &t) const
{
    if (!qpCache_.byteMode()) {
        // Entry-count mode: the legacy flat charges — one full fetch
        // per miss, one full writeback per dirty victim.
        const sim::Cycles fetch =
            t.hit ? 0 : params_.costs.qpCtxFetch;
        return fetch + params_.costs.qpCtxWriteback *
                           static_cast<sim::Cycles>(t.dirtyEvictions);
    }
    // Byte mode: fetch and writeback cost scale with the context
    // bytes actually moved (the flat costs are calibrated for a
    // full RC context of qpContextRefBytes).
    const double ref = static_cast<double>(qpContextRefBytes);
    const double fetch =
        t.hit ? 0.0
              : static_cast<double>(params_.costs.qpCtxFetch) *
                    (static_cast<double>(t.fetchBytes) / ref);
    const double wb =
        static_cast<double>(params_.costs.qpCtxWriteback) *
        (static_cast<double>(t.writebackBytes) / ref);
    return static_cast<sim::Cycles>(fetch + wb);
}

// ---------------------------------------------------------------------
// Scheduler / transmit FSM
// ---------------------------------------------------------------------

void
QpipNic::scheduleSendService(QpContext &qp, std::uint64_t run)
{
    // destroyQp() erases the context immediately, so deferred stages
    // capture the QP number and re-look-up, never a reference.
    // A batch doorbell record charges Schedule once for its whole
    // run; the service loop walks the WRs back to back (each Get WR
    // still pays its own stage, and each re-validates the QP).
    fw_.exec(FwStage::Schedule, params_.costs.schedule,
             [this, qpn = qp.num, run] {
                 for (std::uint64_t i = 0; i < run; ++i) {
                     QpContext *ctx = lookupQp(qpn);
                     if (ctx == nullptr)
                         return;
                     serviceSendWr(*ctx);
                 }
             });
}

void
QpipNic::serviceSendWr(QpContext &qp)
{
    fw_.exec(FwStage::GetWr, params_.costs.getWr, [this,
                                                   qpn = qp.num] {
        QpContext *ctx = lookupQp(qpn);
        if (ctx == nullptr || ctx->rings->sendQ.empty())
            return; // raced with destroy/flush
        QpContext &qp = *ctx;
        SendWr wr = qp.rings->sendQ.front();
        qp.rings->sendQ.pop_front();
        ++qp.sendConsumed;
        touchQpContext(qp.num);

        if (wr.opcode != WrOpcode::Send &&
            (qp.type != QpType::ReliableTcp || qp.rdmaWindow == 0)) {
            sim::panic("qp%u: one-sided WR on a non-RDMA QP", qp.num);
        }

        if (wr.opcode == WrOpcode::RdmaRead) {
            rcEngine_->serviceRdmaRead(qp, std::move(wr));
            return;
        }

        std::uint8_t *src = mrs_.resolve(wr.sge);
        // A Write whose framed message exceeds the peer's standing
        // one-sided window could never leave the send queue (the
        // receiver posts no WRs for it); fail it deterministically.
        const bool oversize =
            wr.opcode == WrOpcode::RdmaWrite &&
            net::rdmaHeaderBytes(net::RdmaOpcode::Write) +
                    wr.sge.length >
                qp.rdmaWindow;
        if (src == nullptr || oversize) {
            Completion c;
            c.wrId = wr.id;
            c.qp = qp.num;
            c.isSend = true;
            c.opcode = wr.opcode;
            c.status = WcStatus::LengthError;
            pushCompletion(qp.scq, c);
            return;
        }

        // Get Data: program the DMA engine, then stage the payload
        // from host memory into NIC SRAM. The firmware is occupied
        // for the descriptor work plus whichever of (SRAM staging,
        // DMA transfer) dominates.
        const std::size_t len = wr.sge.length;
        const Tick begin = std::max(curTick(), fw_.busyUntil());
        const Tick fixed = fw_.clock().cyclesToTicks(
            params_.costs.getDataFixed);
        const Tick touch = fw_.clock().cyclesToTicks(
            static_cast<sim::Cycles>(params_.costs.touchPerByte *
                                     static_cast<double>(len)));
        const Tick dma = dmaIn_.chargeAt(begin, len) - begin;
        fw_.chargeTicks(FwStage::GetData,
                        fixed + std::max(touch, dma));

        std::vector<std::uint8_t> data(src, src + len);
        schedule(fw_.busyUntil(),
                 [this, qpn, wr = std::move(wr),
                  data = std::move(data)]() mutable {
                     if (QpContext *c = lookupQp(qpn))
                         engineFor(c->type).transmit(
                             *c, std::move(wr), std::move(data));
                 });
    });
}

void
QpipNic::emitTcpSegment(IpDatagram &&dgram, const inet::TcpSegMeta &meta)
{
    // Pure ACKs and scheduler-driven retransmits pass the notify and
    // schedule stages too (the paper's Table 2 "ACK Send" column).
    if (meta.pureAck || meta.retransmit) {
        fw_.charge(FwStage::DoorbellProcess,
                   params_.costs.doorbellProcess);
        fw_.charge(FwStage::Schedule, params_.costs.schedule);
    }
    fw_.charge(FwStage::BuildTcpHdr, params_.costs.buildTcpHdr);
    inet_.ipOutput(std::move(dgram));
    fw_.charge(FwStage::UpdateTx, meta.pureAck
                                      ? params_.costs.updateTxAck
                                      : params_.costs.updateTxData);
}

std::optional<std::uint32_t>
QpipNic::txMtu(net::NodeId)
{
    // Single interface: the NIC's link MTU regardless of next hop.
    return link_.config().mtu;
}

void
QpipNic::chargeIpHeaderTx()
{
    fw_.charge(FwStage::BuildIpHdr, params_.costs.buildIpHdr);
}

void
QpipNic::chargeFragmentsTx(std::size_t extra)
{
    fw_.charge(FwStage::Fragment,
               params_.costs.perFragmentTx *
                   static_cast<sim::Cycles>(extra));
}

void
QpipNic::chargeMediaSend()
{
    fw_.charge(FwStage::MediaSend, params_.costs.mediaSend);
}

void
QpipNic::wireTx(std::vector<std::vector<std::uint8_t>> &&frames,
                bool ipv6, net::NodeId dst_node)
{
    schedule(fw_.busyUntil(),
             [this, ipv6, dst_node,
              frames = std::move(frames)]() mutable {
                 for (auto &frame : frames) {
                     auto pkt = net::makePacket();
                     pkt->src = node_;
                     pkt->dst = dst_node;
                     pkt->proto = ipv6 ? net::NetProto::Ipv6
                                       : net::NetProto::Ipv4;
                     pkt->data = std::move(frame);
                     link_.send(0, pkt);
                 }
             });
}

// ---------------------------------------------------------------------
// Receive FSM
// ---------------------------------------------------------------------

void
QpipNic::onPacket(net::PacketPtr pkt)
{
    fw_.exec(FwStage::MediaRcv, params_.costs.mediaRcv,
             [this, pkt] { inet_.wireInput(pkt->proto, pkt->data); });
}

void
QpipNic::chargeRxFrame(std::size_t wire_bytes)
{
    if (!params_.costs.hwChecksumRx) {
        fw_.charge(FwStage::Checksum,
                   params_.costs.fwChecksumFixed +
                       static_cast<sim::Cycles>(
                           params_.costs.fwChecksumPerByte *
                           static_cast<double>(wire_bytes)));
    }
}

void
QpipNic::chargeIpParsed(bool fragment)
{
    sim::Cycles ip_cycles = params_.costs.ipParse;
    if (fragment)
        ip_cycles += params_.costs.perFragmentRx;
    fw_.charge(FwStage::IpParse, ip_cycles);
    if (fragment)
        fw_.charge(FwStage::Reassembly, 0); // stage marker only
}

void
QpipNic::chargeTcpInput(std::size_t, bool pure_ack)
{
    sim::Cycles c = params_.costs.tcpParseData;
    if (pure_ack && !params_.costs.hwMultiply)
        c += params_.costs.tcpParseAckExtra;
    if (params_.costs.hwDemux) {
        const sim::Cycles demux = FirmwareCostModel::us(1.5);
        c = c > demux ? c - demux : 0;
    }
    fw_.charge(FwStage::TcpParse, c);
}

void
QpipNic::chargeUdpPreParse()
{
    fw_.charge(FwStage::UdpParse, params_.costs.udpParse);
}

bool
QpipNic::tcpAccept(const inet::FourTuple &t, const inet::TcpHeader &syn)
{
    // Connection rendezvous: mate an incoming SYN to an idle QP the
    // host queued on this monitored port.
    auto lit = listeners_.find(syn.dstPort);
    if (lit == listeners_.end() || lit->second.empty())
        return false;
    PendingAccept pa = std::move(lit->second.front());
    lit->second.pop_front();
    auto *ctx = lookupQp(pa.qp);
    if (ctx == nullptr)
        return false;
    ctx->local = t.local;
    ctx->bound = true;
    if (ctx->conn) {
        connOwner_.erase(ctx->conn.get());
        inet_.unregisterConn(ctx->conn->tuple());
        ctx->conn.reset();
    }
    ctx->conn = std::make_unique<inet::TcpConnection>(inet_, *ctx,
                                                      params_.tcp);
    ctx->conn->stats().registerIn(
        statRegistry(),
        name() + ".qp" + std::to_string(ctx->num) + ".tcp");
    inet_.registerConn(t, ctx->conn.get());
    connOwner_[ctx->conn.get()] = ctx;
    ctx->conn->openPassive(t.local, t.remote, syn);
    return true;
}

void
QpipNic::receiveIntoWr(QpContext &qp, std::vector<std::uint8_t> msg,
                       const inet::SockAddr &from)
{
    touchQpContext(qp.num);
    RecvWr wr;
    if (qp.srq != nullptr) {
        auto &srq = *qp.srq;
        if (srq.postedCount == 0 || srq.ring->recvQ.empty())
            sim::panic("receiveIntoWr without a posted SRQ WR");
        wr = srq.ring->recvQ.front();
        srq.ring->recvQ.pop_front();
        ++srq.consumed;
        --srq.postedCount;
        srq.postedBytes -= wr.sge.length;
    } else {
        if (qp.postedRecvCount == 0 || qp.rings->recvQ.empty())
            sim::panic("receiveIntoWr without a posted WR");
        wr = qp.rings->recvQ.front();
        qp.rings->recvQ.pop_front();
        ++qp.recvConsumed;
        --qp.postedRecvCount;
        qp.postedRecvBytes -= wr.sge.length;
    }

    fw_.exec(FwStage::GetWr, params_.costs.getWr,
             [this, qpn = qp.num, wr, msg = std::move(msg),
              from]() mutable {
                 QpContext *ctx = lookupQp(qpn);
                 if (ctx == nullptr)
                     return; // destroyed while the firmware was busy
                 QpContext &qp = *ctx;
                 std::uint8_t *dst = mrs_.resolve(wr.sge);
                 Completion c;
                 c.wrId = wr.id;
                 c.qp = qp.num;
                 c.isSend = false;
                 c.from = from;
                 if (dst == nullptr || msg.size() > wr.sge.length) {
                     c.status = WcStatus::LengthError;
                     c.byteLen = msg.size();
                     fw_.charge(FwStage::UpdateRx,
                                params_.costs.updateRxData);
                     pushCompletion(qp.rcq, c);
                     return;
                 }
                 // Put Data: DMA from NIC SRAM into the posted
                 // buffer (same shape as Get Data).
                 const Tick begin =
                     std::max(curTick(), fw_.busyUntil());
                 const Tick fixed = fw_.clock().cyclesToTicks(
                     params_.costs.putDataFixed);
                 const Tick touch = fw_.clock().cyclesToTicks(
                     static_cast<sim::Cycles>(
                         params_.costs.touchPerByte *
                         static_cast<double>(msg.size())));
                 const Tick dma =
                     dmaOut_.chargeAt(begin, msg.size()) - begin;
                 fw_.chargeTicks(FwStage::PutData,
                                 fixed + std::max(touch, dma));
                 std::copy(msg.begin(), msg.end(), dst);
                 c.status = WcStatus::Success;
                 c.byteLen = msg.size();
                 fw_.charge(FwStage::UpdateRx,
                            params_.costs.updateRxData);
                 pushCompletion(qp.rcq, c);
             });
}

// ---------------------------------------------------------------------
// Completions, teardown, env services
// ---------------------------------------------------------------------

void
QpipNic::pushCompletion(CqRing *cq, Completion c)
{
    if (cq == nullptr)
        return;
    const sim::Tick at = std::max(curTick(), fw_.busyUntil());
    c.completedAt = at;
    schedule(at, [this, cq, c] {
        // Moderation defers the armed-notify upcall until enough
        // CQEs accumulate (or the timeout below fires). Only pushes
        // that would have notified — armed CQ — count toward the
        // threshold; an unarmed CQ means the host is polling and no
        // event was owed.
        const bool moderate = params_.cqModerationCount > 1;
        const bool wasArmed = cq->armed();
        if (!cq->push(c, moderate)) {
            cqOverflows.inc();
            return;
        }
        if (!moderate) {
            if (wasArmed)
                cqNotifies.inc();
            return;
        }
        if (!wasArmed)
            return;
        auto &mod = cqMod_[cq];
        ++mod.pending;
        if (mod.pending >= params_.cqModerationCount) {
            cqKick(cq);
            return;
        }
        cqCoalesced.inc();
        if (mod.pending == 1 && params_.cqModerationCycles > 0) {
            mod.timer = scheduleIn(
                fw_.clock().cyclesToTicks(params_.cqModerationCycles),
                [this, cq] { cqKick(cq); });
        }
    });
}

void
QpipNic::cqKick(CqRing *cq)
{
    auto it = cqMod_.find(cq);
    if (it != cqMod_.end()) {
        it->second.pending = 0;
        if (it->second.timer.pending())
            it->second.timer.cancel();
    }
    if (cq->armed() && !cq->empty()) {
        cqNotifies.inc();
        cq->notifyNow();
    }
}

void
QpipNic::flushQp(QpContext &qp, WcStatus status)
{
    // Transport-held WRs (RUD unacked windows, blocked sends) flush
    // first so their completions precede the ring sweeps below.
    engineFor(qp.type).flushed(qp, status);
    while (!qp.inflightSends.empty()) {
        QpContext::Inflight fly = std::move(qp.inflightSends.front());
        qp.inflightSends.pop_front();
        // RdmaReq entries complete via pendingRdma (below); firmware
        // responses never surface a completion.
        if (fly.kind != QpContext::TxKind::Send)
            continue;
        Completion c;
        c.wrId = fly.wr.id;
        c.qp = qp.num;
        c.isSend = true;
        c.opcode = fly.wr.opcode;
        c.status = status;
        pushCompletion(qp.scq, c);
    }
    while (!qp.pendingRdma.empty()) {
        SendWr wr = std::move(qp.pendingRdma.front().second);
        qp.pendingRdma.pop_front();
        Completion c;
        c.wrId = wr.id;
        c.qp = qp.num;
        c.isSend = true;
        c.opcode = wr.opcode;
        c.status = status;
        pushCompletion(qp.scq, c);
    }
    while (!qp.rings->sendQ.empty()) {
        SendWr wr = qp.rings->sendQ.front();
        qp.rings->sendQ.pop_front();
        ++qp.sendConsumed;
        if (qp.sendSeen < qp.sendConsumed)
            qp.sendSeen = qp.sendConsumed;
        Completion c;
        c.wrId = wr.id;
        c.qp = qp.num;
        c.isSend = true;
        c.opcode = wr.opcode;
        c.status = status;
        pushCompletion(qp.scq, c);
    }
    while (!qp.rings->recvQ.empty()) {
        RecvWr wr = qp.rings->recvQ.front();
        qp.rings->recvQ.pop_front();
        ++qp.recvConsumed;
        Completion c;
        c.wrId = wr.id;
        c.qp = qp.num;
        c.isSend = false;
        c.status = status;
        pushCompletion(qp.rcq, c);
    }
    qp.postedRecvCount = 0;
    qp.postedRecvBytes = 0;
    qp.recvSeen = qp.recvConsumed;
}

sim::Tick
QpipNic::now()
{
    return curTick();
}

sim::EventHandle
QpipNic::scheduleTimer(sim::Tick delay, std::function<void()> fn)
{
    return scheduleIn(delay, [this, fn = std::move(fn)]() mutable {
        fw_.charge(FwStage::Timer, params_.costs.timerService);
        fn();
    });
}

std::uint32_t
QpipNic::randomIss()
{
    return static_cast<std::uint32_t>(rng().next());
}

const std::string &
QpipNic::inetName() const
{
    return name();
}

void
QpipNic::connectionClosed(inet::TcpConnection &conn)
{
    // The engine already dropped the PCB entry; the QpContext keeps
    // the connection object until the QP is destroyed, so only the
    // ownership record goes away here.
    connOwner_.erase(&conn);
}

sim::Tracer *
QpipNic::tracer()
{
    return &SimObject::tracer();
}

} // namespace qpip::nic
