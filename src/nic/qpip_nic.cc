#include "nic/qpip_nic.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace qpip::nic {

using inet::IpDatagram;
using inet::IpProto;
using sim::Tick;

const char *
wcStatusName(WcStatus s)
{
    switch (s) {
      case WcStatus::Success: return "success";
      case WcStatus::LengthError: return "length-error";
      case WcStatus::Flushed: return "flushed";
      case WcStatus::RemoteReset: return "remote-reset";
    }
    return "?";
}

inet::TcpConfig
QpipNicParams::defaultFirmwareTcpConfig()
{
    inet::TcpConfig cfg;
    cfg.messageMode = true;
    cfg.reassembly = false; // prototype subset: no OOO reassembly
    cfg.delayedAck = false; // SAN latency: ACK every message
    cfg.noDelay = true;
    cfg.mss = 16384;
    cfg.windowScale = 8;
    cfg.tsGranularity = sim::oneUs; // fine-grained firmware clock
    cfg.minRto = 5 * sim::oneMs;    // NIC-resident runtime timers
    cfg.maxRto = 10 * sim::oneSec;
    cfg.msl = 50 * sim::oneMs;      // SAN-scale TIME_WAIT
    cfg.initialCwndSegs = 4;
    cfg.maxCwndSegs = 256;
    return cfg;
}

// ---------------------------------------------------------------------
// QpContext
// ---------------------------------------------------------------------

struct QpipNic::QpContext : public inet::TcpObserver,
                            public inet::UdpEndpoint
{
    QpContext(QpipNic &nic_ref, QpNum n, QpType t, QpHostRings *r,
              CqRing *s, CqRing *rc)
        : nic(nic_ref), num(n), type(t), rings(r), scq(s), rcq(rc)
    {}

    QpipNic &nic;
    QpNum num;
    QpType type;
    QpHostRings *rings;
    CqRing *scq;
    CqRing *rcq;

    inet::SockAddr local;
    bool bound = false;
    std::unique_ptr<inet::TcpConnection> conn;
    bool connected = false;
    ConnectCb connectDone;
    AcceptCb acceptDone;

    // NIC-side shadow of the host work queues (what the doorbell FSM
    // maintains in the QPIP state table).
    std::uint64_t sendSeen = 0;
    std::uint64_t sendConsumed = 0;
    std::uint64_t recvSeen = 0;
    std::uint64_t recvConsumed = 0;
    std::uint32_t postedRecvCount = 0;
    std::uint64_t postedRecvBytes = 0;

    // Sent-but-unacked send WRs, completion in FIFO order.
    std::deque<std::pair<std::uint64_t, SendWr>> inflightSends;
    std::uint64_t nextTag = 1;

    // --- inet::UdpEndpoint --------------------------------------------
    void
    udpDeliver(std::vector<std::uint8_t> &&msg,
               const inet::SockAddr &from) override
    {
        if (postedRecvCount == 0) {
            // Unreliable service: no posted WR, the datagram is gone.
            nic.udpNoWrDrops.inc();
            return;
        }
        nic.receiveIntoWr(*this, std::move(msg), from);
    }

    // --- TcpObserver --------------------------------------------------
    void
    onConnected(inet::TcpConnection &) override
    {
        connected = true;
        if (connectDone) {
            auto cb = std::move(connectDone);
            nic.schedule(nic.fw_.busyUntil(), [cb] { cb(true); });
        }
        if (acceptDone) {
            auto cb = std::move(acceptDone);
            const QpNum qp = num;
            nic.schedule(nic.fw_.busyUntil(), [cb, qp] { cb(qp); });
        }
    }

    bool
    canAcceptMessage(inet::TcpConnection &, std::size_t) override
    {
        return postedRecvCount > 0;
    }

    void
    onMessage(inet::TcpConnection &conn_ref,
              std::vector<std::uint8_t> &&msg) override
    {
        nic.receiveIntoWr(*this, std::move(msg),
                          conn_ref.tuple().remote);
    }

    void
    onMessageAcked(inet::TcpConnection &, std::uint64_t tag) override
    {
        if (inflightSends.empty() || inflightSends.front().first != tag)
            sim::panic("qp%u: send completion out of order", num);
        SendWr wr = std::move(inflightSends.front().second);
        inflightSends.pop_front();
        // Table 3 "Update" (ACK): WR status + QP state writeback.
        nic.fw_.charge(FwStage::UpdateRx, nic.costs().updateRxAck);
        Completion c;
        c.wrId = wr.id;
        c.qp = num;
        c.isSend = true;
        c.status = WcStatus::Success;
        c.byteLen = wr.sge.length;
        nic.pushCompletion(scq, c);
    }

    void
    onPeerClosed(inet::TcpConnection &conn_ref) override
    {
        // A QP channel is torn down as a unit: answer the peer's FIN
        // with our own so the connection fully closes and outstanding
        // WRs flush.
        conn_ref.close();
    }

    void
    onReset(inet::TcpConnection &) override
    {
        connected = false;
        if (connectDone) {
            auto cb = std::move(connectDone);
            nic.schedule(nic.curTick(), [cb] { cb(false); });
        }
        nic.flushQp(*this, WcStatus::RemoteReset);
    }

    void
    onClosed(inet::TcpConnection &) override
    {
        connected = false;
        nic.flushQp(*this, WcStatus::Flushed);
    }

    std::uint32_t
    receiveWindow(inet::TcpConnection &) override
    {
        return static_cast<std::uint32_t>(std::min<std::uint64_t>(
            postedRecvBytes, 0xffffffffull));
    }
};

// ---------------------------------------------------------------------
// Construction / management FSM
// ---------------------------------------------------------------------

QpipNic::QpipNic(sim::Simulation &sim, std::string name, net::Link &link,
                 net::NodeId node, QpipNicParams params)
    : SimObject(sim, std::move(name)), link_(link), node_(node),
      params_(params),
      fw_(sim, this->name() + ".fw", params.costs.freqHz),
      dmaIn_(sim, this->name() + ".dma_in", params.dma),
      dmaOut_(sim, this->name() + ".dma_out", params.dma),
      doorbells_(sim, this->name() + ".doorbells", params.doorbellCap),
      inet_(*this, params.reassExpiry), badPackets(inet_.badFrames),
      noQpDrops(inet_.noMatchDrops)
{
    // Force the prototype's transport subset regardless of overrides.
    params_.tcp.messageMode = true;
    params_.tcp.reassembly = false;
    regStat("badPackets", badPackets);
    regStat("noQpDrops", noQpDrops);
    regStat("udpNoWrDrops", udpNoWrDrops);
    regStat("cqOverflows", cqOverflows);
    regStat("reass.fragmentsIn", inet_.reassembler().fragmentsIn);
    regStat("reass.reassembled", inet_.reassembler().reassembled);
    regStat("reass.expired", inet_.reassembler().expired);
    link_.attach(0, *this);
    doorbells_.setDrainHook([this] {
        if (!drainActive_) {
            drainActive_ = true;
            doorbellDrain();
        }
    });
}

QpipNic::~QpipNic()
{
    // Expire the liveness token first: QueuePair/MemoryRegion
    // destructors reached from the QP contexts below must not call
    // back into this object.
    aliveToken_.reset();
}

void
QpipNic::setAddress(const inet::InetAddr &addr)
{
    addr_ = addr;
}

MrKey
QpipNic::registerMemory(std::uint8_t *base, std::size_t bytes)
{
    fw_.charge(FwStage::Mgmt, params_.costs.mgmtCommand);
    return mrs_.registerMemory(base, bytes);
}

void
QpipNic::deregisterMemory(MrKey key)
{
    fw_.charge(FwStage::Mgmt, params_.costs.mgmtCommand);
    mrs_.deregister(key);
}

QpNum
QpipNic::createQp(QpType type, QpHostRings *rings, CqRing *scq,
                  CqRing *rcq)
{
    fw_.charge(FwStage::Mgmt, params_.costs.mgmtCommand);
    const QpNum num = nextQpNum_++;
    qps_[num] = std::make_unique<QpContext>(*this, num, type, rings,
                                            scq, rcq);
    return num;
}

void
QpipNic::destroyQp(QpNum qp)
{
    auto *ctx = lookupQp(qp);
    if (ctx == nullptr)
        return;
    fw_.charge(FwStage::Mgmt, params_.costs.mgmtCommand);
    if (ctx->conn) {
        connOwner_.erase(ctx->conn.get());
        inet_.unregisterConn(ctx->conn->tuple());
        ctx->conn->abort();
    }
    if (ctx->bound && ctx->type == QpType::UnreliableUdp)
        inet_.unbindUdp(ctx->local.port);
    flushQp(*ctx, WcStatus::Flushed);
    qps_.erase(qp);
}

void
QpipNic::bindLocal(QpNum qp, std::uint16_t port)
{
    auto *ctx = lookupQp(qp);
    if (ctx == nullptr)
        sim::fatal("bindLocal: unknown qp %u", qp);
    fw_.charge(FwStage::Mgmt, params_.costs.mgmtCommand);
    ctx->local = inet::SockAddr{addr_, port};
    ctx->bound = true;
    if (ctx->type == QpType::UnreliableUdp) {
        if (!inet_.bindUdp(port, ctx))
            sim::fatal("udp port %u already bound on %s", port,
                       name().c_str());
    }
}

void
QpipNic::connect(QpNum qp, const inet::SockAddr &remote, ConnectCb done)
{
    auto *ctx = lookupQp(qp);
    if (ctx == nullptr || ctx->type != QpType::ReliableTcp)
        sim::fatal("connect: bad qp %u", qp);
    if (!ctx->bound) {
        ctx->local = inet::SockAddr{addr_, ephemeralPort_++};
        ctx->bound = true;
    }
    ctx->connectDone = std::move(done);
    fw_.exec(FwStage::Mgmt, params_.costs.mgmtCommand,
             [this, ctx, remote] {
                 // Destroy any previous connection first so its stat
                 // paths vacate before the new one claims them.
                 if (ctx->conn) {
                     connOwner_.erase(ctx->conn.get());
                     inet_.unregisterConn(ctx->conn->tuple());
                     ctx->conn.reset();
                 }
                 ctx->conn = std::make_unique<inet::TcpConnection>(
                     inet_, *ctx, params_.tcp);
                 ctx->conn->stats().registerIn(
                     statRegistry(), name() + ".qp" +
                                         std::to_string(ctx->num) +
                                         ".tcp");
                 inet::FourTuple t{ctx->local, remote};
                 inet_.registerConn(t, ctx->conn.get());
                 connOwner_[ctx->conn.get()] = ctx;
                 ctx->conn->openActive(ctx->local, remote);
             });
}

void
QpipNic::acceptOn(std::uint16_t port, QpNum qp, AcceptCb done)
{
    auto *ctx = lookupQp(qp);
    if (ctx == nullptr || ctx->type != QpType::ReliableTcp)
        sim::fatal("acceptOn: bad qp %u", qp);
    fw_.charge(FwStage::Mgmt, params_.costs.mgmtCommand);
    ctx->acceptDone = std::move(done);
    listeners_[port].push_back(PendingAccept{qp, nullptr});
}

void
QpipNic::disconnect(QpNum qp)
{
    auto *ctx = lookupQp(qp);
    if (ctx == nullptr || !ctx->conn)
        return;
    fw_.exec(FwStage::Mgmt, params_.costs.mgmtCommand, [ctx] {
        if (ctx->conn)
            ctx->conn->close();
    });
}

QpipNic::QpContext *
QpipNic::lookupQp(QpNum qp)
{
    auto it = qps_.find(qp);
    return it == qps_.end() ? nullptr : it->second.get();
}

inet::TcpConnection *
QpipNic::connectionOf(QpNum qp)
{
    auto *ctx = lookupQp(qp);
    return ctx != nullptr ? ctx->conn.get() : nullptr;
}

// ---------------------------------------------------------------------
// Doorbell FSM
// ---------------------------------------------------------------------

void
QpipNic::postDoorbell(QpNum qp, bool is_send)
{
    doorbells_.ring(Doorbell{qp, is_send});
}

void
QpipNic::doorbellDrain()
{
    Doorbell db;
    if (!doorbells_.pop(db)) {
        drainActive_ = false;
        return;
    }
    sim::Cycles c = params_.costs.doorbellProcess;
    if (!params_.costs.hwDoorbell) {
        c = static_cast<sim::Cycles>(static_cast<double>(c) *
                                     params_.costs.swDoorbellFactor);
    }
    fw_.exec(FwStage::DoorbellProcess, c, [this, db] {
        auto *ctx = lookupQp(db.qp);
        if (ctx != nullptr) {
            if (db.isSend) {
                const std::uint64_t total =
                    ctx->sendConsumed + ctx->rings->sendQ.size();
                const std::uint64_t fresh = total - ctx->sendSeen;
                ctx->sendSeen = total;
                for (std::uint64_t i = 0; i < fresh; ++i)
                    scheduleSendService(*ctx);
            } else {
                const std::uint64_t total =
                    ctx->recvConsumed + ctx->rings->recvQ.size();
                const std::uint64_t fresh = total - ctx->recvSeen;
                ctx->recvSeen = total;
                // The new WRs sit at the back of the host ring.
                const auto &q = ctx->rings->recvQ;
                for (std::uint64_t i = 0; i < fresh; ++i) {
                    const auto &wr = q[q.size() - fresh + i];
                    ++ctx->postedRecvCount;
                    ctx->postedRecvBytes += wr.sge.length;
                }
                if (fresh > 0 && ctx->conn)
                    ctx->conn->onReceiveWindowGrew();
            }
        }
        doorbellDrain();
    });
}

// ---------------------------------------------------------------------
// Scheduler / transmit FSM
// ---------------------------------------------------------------------

void
QpipNic::scheduleSendService(QpContext &qp)
{
    fw_.exec(FwStage::Schedule, params_.costs.schedule,
             [this, &qp] { serviceSendWr(qp); });
}

void
QpipNic::serviceSendWr(QpContext &qp)
{
    fw_.exec(FwStage::GetWr, params_.costs.getWr, [this, &qp] {
        if (qp.rings->sendQ.empty())
            return; // raced with destroy/flush
        SendWr wr = qp.rings->sendQ.front();
        qp.rings->sendQ.pop_front();
        ++qp.sendConsumed;

        std::uint8_t *src = mrs_.resolve(wr.sge);
        if (src == nullptr) {
            Completion c;
            c.wrId = wr.id;
            c.qp = qp.num;
            c.isSend = true;
            c.status = WcStatus::LengthError;
            pushCompletion(qp.scq, c);
            return;
        }

        // Get Data: program the DMA engine, then stage the payload
        // from host memory into NIC SRAM. The firmware is occupied
        // for the descriptor work plus whichever of (SRAM staging,
        // DMA transfer) dominates.
        const std::size_t len = wr.sge.length;
        const Tick begin = std::max(curTick(), fw_.busyUntil());
        const Tick fixed = fw_.clock().cyclesToTicks(
            params_.costs.getDataFixed);
        const Tick touch = fw_.clock().cyclesToTicks(
            static_cast<sim::Cycles>(params_.costs.touchPerByte *
                                     static_cast<double>(len)));
        const Tick dma = dmaIn_.chargeAt(begin, len) - begin;
        fw_.chargeTicks(FwStage::GetData,
                        fixed + std::max(touch, dma));

        std::vector<std::uint8_t> data(src, src + len);
        schedule(fw_.busyUntil(),
                 [this, &qp, wr = std::move(wr),
                  data = std::move(data)]() mutable {
                     if (qp.type == QpType::ReliableTcp) {
                         if (!qp.conn) {
                             Completion c;
                             c.wrId = wr.id;
                             c.qp = qp.num;
                             c.isSend = true;
                             c.status = WcStatus::Flushed;
                             pushCompletion(qp.scq, c);
                             return;
                         }
                         const std::uint64_t tag = qp.nextTag++;
                         qp.inflightSends.emplace_back(tag, wr);
                         qp.conn->sendMessage(std::move(data), tag);
                     } else {
                         sendUdpMessage(qp, std::move(wr),
                                        std::move(data));
                     }
                 });
    });
}

void
QpipNic::sendUdpMessage(QpContext &qp, SendWr wr,
                        std::vector<std::uint8_t> data)
{
    // Build UDP Hdr (charged under the header-build stage).
    fw_.charge(FwStage::BuildTcpHdr, params_.costs.buildUdpHdr);
    IpDatagram dgram;
    dgram.src = qp.local.addr;
    dgram.dst = wr.remote.addr;
    dgram.proto = IpProto::Udp;
    dgram.payload = inet::serializeUdp(qp.local.addr, wr.remote.addr,
                                       qp.local.port, wr.remote.port,
                                       data);
    const auto res = inet_.ipOutput(std::move(dgram));

    // "As soon as a UDP message is sent, the associated send WR is
    // marked as complete." An oversized message reports the verbs
    // moral equivalent of EMSGSIZE.
    fw_.charge(FwStage::UpdateTx, params_.costs.updateTxData);
    Completion c;
    c.wrId = wr.id;
    c.qp = qp.num;
    c.isSend = true;
    c.status = res == inet::IpSendResult::MsgSize
                   ? WcStatus::LengthError
                   : WcStatus::Success;
    c.byteLen = wr.sge.length;
    pushCompletion(qp.scq, c);
}

void
QpipNic::emitTcpSegment(IpDatagram &&dgram, const inet::TcpSegMeta &meta)
{
    // Pure ACKs and scheduler-driven retransmits pass the notify and
    // schedule stages too (the paper's Table 2 "ACK Send" column).
    if (meta.pureAck || meta.retransmit) {
        fw_.charge(FwStage::DoorbellProcess,
                   params_.costs.doorbellProcess);
        fw_.charge(FwStage::Schedule, params_.costs.schedule);
    }
    fw_.charge(FwStage::BuildTcpHdr, params_.costs.buildTcpHdr);
    inet_.ipOutput(std::move(dgram));
    fw_.charge(FwStage::UpdateTx, meta.pureAck
                                      ? params_.costs.updateTxAck
                                      : params_.costs.updateTxData);
}

std::optional<std::uint32_t>
QpipNic::txMtu()
{
    return link_.config().mtu;
}

void
QpipNic::chargeIpHeaderTx()
{
    fw_.charge(FwStage::BuildIpHdr, params_.costs.buildIpHdr);
}

void
QpipNic::chargeFragmentsTx(std::size_t extra)
{
    fw_.charge(FwStage::Fragment,
               params_.costs.perFragmentTx *
                   static_cast<sim::Cycles>(extra));
}

void
QpipNic::chargeMediaSend()
{
    fw_.charge(FwStage::MediaSend, params_.costs.mediaSend);
}

void
QpipNic::wireTx(std::vector<std::vector<std::uint8_t>> &&frames,
                bool ipv6, net::NodeId dst_node)
{
    schedule(fw_.busyUntil(),
             [this, ipv6, dst_node,
              frames = std::move(frames)]() mutable {
                 for (auto &frame : frames) {
                     auto pkt = net::makePacket();
                     pkt->src = node_;
                     pkt->dst = dst_node;
                     pkt->proto = ipv6 ? net::NetProto::Ipv6
                                       : net::NetProto::Ipv4;
                     pkt->data = std::move(frame);
                     link_.send(0, pkt);
                 }
             });
}

// ---------------------------------------------------------------------
// Receive FSM
// ---------------------------------------------------------------------

void
QpipNic::onPacket(net::PacketPtr pkt)
{
    fw_.exec(FwStage::MediaRcv, params_.costs.mediaRcv,
             [this, pkt] { inet_.wireInput(pkt->proto, pkt->data); });
}

void
QpipNic::chargeRxFrame(std::size_t wire_bytes)
{
    if (!params_.costs.hwChecksumRx) {
        fw_.charge(FwStage::Checksum,
                   params_.costs.fwChecksumFixed +
                       static_cast<sim::Cycles>(
                           params_.costs.fwChecksumPerByte *
                           static_cast<double>(wire_bytes)));
    }
}

void
QpipNic::chargeIpParsed(bool fragment)
{
    sim::Cycles ip_cycles = params_.costs.ipParse;
    if (fragment)
        ip_cycles += params_.costs.perFragmentRx;
    fw_.charge(FwStage::IpParse, ip_cycles);
    if (fragment)
        fw_.charge(FwStage::Reassembly, 0); // stage marker only
}

void
QpipNic::chargeTcpInput(std::size_t, bool pure_ack)
{
    sim::Cycles c = params_.costs.tcpParseData;
    if (pure_ack && !params_.costs.hwMultiply)
        c += params_.costs.tcpParseAckExtra;
    if (params_.costs.hwDemux) {
        const sim::Cycles demux = FirmwareCostModel::us(1.5);
        c = c > demux ? c - demux : 0;
    }
    fw_.charge(FwStage::TcpParse, c);
}

void
QpipNic::chargeUdpPreParse()
{
    fw_.charge(FwStage::UdpParse, params_.costs.udpParse);
}

bool
QpipNic::tcpAccept(const inet::FourTuple &t, const inet::TcpHeader &syn)
{
    // Connection rendezvous: mate an incoming SYN to an idle QP the
    // host queued on this monitored port.
    auto lit = listeners_.find(syn.dstPort);
    if (lit == listeners_.end() || lit->second.empty())
        return false;
    PendingAccept pa = std::move(lit->second.front());
    lit->second.pop_front();
    auto *ctx = lookupQp(pa.qp);
    if (ctx == nullptr)
        return false;
    ctx->local = t.local;
    ctx->bound = true;
    if (ctx->conn) {
        connOwner_.erase(ctx->conn.get());
        inet_.unregisterConn(ctx->conn->tuple());
        ctx->conn.reset();
    }
    ctx->conn = std::make_unique<inet::TcpConnection>(inet_, *ctx,
                                                      params_.tcp);
    ctx->conn->stats().registerIn(
        statRegistry(),
        name() + ".qp" + std::to_string(ctx->num) + ".tcp");
    inet_.registerConn(t, ctx->conn.get());
    connOwner_[ctx->conn.get()] = ctx;
    ctx->conn->openPassive(t.local, t.remote, syn);
    return true;
}

void
QpipNic::receiveIntoWr(QpContext &qp, std::vector<std::uint8_t> msg,
                       const inet::SockAddr &from)
{
    if (qp.postedRecvCount == 0 || qp.rings->recvQ.empty())
        sim::panic("receiveIntoWr without a posted WR");
    RecvWr wr = qp.rings->recvQ.front();
    qp.rings->recvQ.pop_front();
    ++qp.recvConsumed;
    --qp.postedRecvCount;
    qp.postedRecvBytes -= wr.sge.length;

    fw_.exec(FwStage::GetWr, params_.costs.getWr,
             [this, &qp, wr, msg = std::move(msg), from]() mutable {
                 std::uint8_t *dst = mrs_.resolve(wr.sge);
                 Completion c;
                 c.wrId = wr.id;
                 c.qp = qp.num;
                 c.isSend = false;
                 c.from = from;
                 if (dst == nullptr || msg.size() > wr.sge.length) {
                     c.status = WcStatus::LengthError;
                     c.byteLen = msg.size();
                     fw_.charge(FwStage::UpdateRx,
                                params_.costs.updateRxData);
                     pushCompletion(qp.rcq, c);
                     return;
                 }
                 // Put Data: DMA from NIC SRAM into the posted
                 // buffer (same shape as Get Data).
                 const Tick begin =
                     std::max(curTick(), fw_.busyUntil());
                 const Tick fixed = fw_.clock().cyclesToTicks(
                     params_.costs.putDataFixed);
                 const Tick touch = fw_.clock().cyclesToTicks(
                     static_cast<sim::Cycles>(
                         params_.costs.touchPerByte *
                         static_cast<double>(msg.size())));
                 const Tick dma =
                     dmaOut_.chargeAt(begin, msg.size()) - begin;
                 fw_.chargeTicks(FwStage::PutData,
                                 fixed + std::max(touch, dma));
                 std::copy(msg.begin(), msg.end(), dst);
                 c.status = WcStatus::Success;
                 c.byteLen = msg.size();
                 fw_.charge(FwStage::UpdateRx,
                            params_.costs.updateRxData);
                 pushCompletion(qp.rcq, c);
             });
}

// ---------------------------------------------------------------------
// Completions, teardown, env services
// ---------------------------------------------------------------------

void
QpipNic::pushCompletion(CqRing *cq, Completion c)
{
    if (cq == nullptr)
        return;
    const sim::Tick at = std::max(curTick(), fw_.busyUntil());
    c.completedAt = at;
    schedule(at, [this, cq, c] {
        if (!cq->push(c))
            cqOverflows.inc();
    });
}

void
QpipNic::flushQp(QpContext &qp, WcStatus status)
{
    while (!qp.inflightSends.empty()) {
        auto [tag, wr] = std::move(qp.inflightSends.front());
        qp.inflightSends.pop_front();
        Completion c;
        c.wrId = wr.id;
        c.qp = qp.num;
        c.isSend = true;
        c.status = status;
        pushCompletion(qp.scq, c);
    }
    while (!qp.rings->sendQ.empty()) {
        SendWr wr = qp.rings->sendQ.front();
        qp.rings->sendQ.pop_front();
        ++qp.sendConsumed;
        if (qp.sendSeen < qp.sendConsumed)
            qp.sendSeen = qp.sendConsumed;
        Completion c;
        c.wrId = wr.id;
        c.qp = qp.num;
        c.isSend = true;
        c.status = status;
        pushCompletion(qp.scq, c);
    }
    while (!qp.rings->recvQ.empty()) {
        RecvWr wr = qp.rings->recvQ.front();
        qp.rings->recvQ.pop_front();
        ++qp.recvConsumed;
        Completion c;
        c.wrId = wr.id;
        c.qp = qp.num;
        c.isSend = false;
        c.status = status;
        pushCompletion(qp.rcq, c);
    }
    qp.postedRecvCount = 0;
    qp.postedRecvBytes = 0;
    qp.recvSeen = qp.recvConsumed;
}

sim::Tick
QpipNic::now()
{
    return curTick();
}

sim::EventHandle
QpipNic::scheduleTimer(sim::Tick delay, std::function<void()> fn)
{
    return scheduleIn(delay, [this, fn = std::move(fn)]() mutable {
        fw_.charge(FwStage::Timer, params_.costs.timerService);
        fn();
    });
}

std::uint32_t
QpipNic::randomIss()
{
    return static_cast<std::uint32_t>(rng().next());
}

const std::string &
QpipNic::inetName() const
{
    return name();
}

void
QpipNic::connectionClosed(inet::TcpConnection &conn)
{
    // The engine already dropped the PCB entry; the QpContext keeps
    // the connection object until the QP is destroyed, so only the
    // ownership record goes away here.
    connOwner_.erase(&conn);
}

sim::Tracer *
QpipNic::tracer()
{
    return &SimObject::tracer();
}

} // namespace qpip::nic
