#include "nic/qpip_nic.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace qpip::nic {

using inet::IpDatagram;
using inet::IpProto;
using sim::Tick;

const char *
wcStatusName(WcStatus s)
{
    switch (s) {
      case WcStatus::Success: return "success";
      case WcStatus::LengthError: return "length-error";
      case WcStatus::Flushed: return "flushed";
      case WcStatus::RemoteReset: return "remote-reset";
      case WcStatus::RemoteAccessError: return "remote-access-error";
    }
    return "?";
}

const char *
wrOpcodeName(WrOpcode op)
{
    switch (op) {
      case WrOpcode::Send: return "send";
      case WrOpcode::RdmaWrite: return "rdma-write";
      case WrOpcode::RdmaRead: return "rdma-read";
    }
    return "?";
}

inet::TcpConfig
QpipNicParams::defaultFirmwareTcpConfig()
{
    inet::TcpConfig cfg;
    cfg.messageMode = true;
    cfg.reassembly = false; // prototype subset: no OOO reassembly
    cfg.delayedAck = false; // SAN latency: ACK every message
    cfg.noDelay = true;
    cfg.mss = 16384;
    cfg.windowScale = 8;
    cfg.tsGranularity = sim::oneUs; // fine-grained firmware clock
    cfg.minRto = 5 * sim::oneMs;    // NIC-resident runtime timers
    cfg.maxRto = 10 * sim::oneSec;
    cfg.msl = 50 * sim::oneMs;      // SAN-scale TIME_WAIT
    cfg.initialCwndSegs = 4;
    cfg.maxCwndSegs = 256;
    return cfg;
}

// ---------------------------------------------------------------------
// QpContext
// ---------------------------------------------------------------------

/**
 * NIC-side state of one shared receive queue: the doorbell-FSM shadow
 * of the host ring plus the attach list (in attach order, so window
 * redelivery after a replenish is deterministic). SRQ contexts are
 * pinned in SRAM — they are shared infrastructure like the demux
 * table, not per-QP state, so they don't flow through the QP context
 * cache.
 */
struct QpipNic::SrqContext
{
    SrqNum num = invalidSrq;
    SrqHostRing *ring = nullptr;
    std::uint64_t seen = 0;
    std::uint64_t consumed = 0;
    std::uint32_t postedCount = 0;
    std::uint64_t postedBytes = 0;
    std::vector<QpContext *> attached;
};

struct QpipNic::QpContext : public inet::TcpObserver,
                            public inet::UdpEndpoint
{
    QpContext(QpipNic &nic_ref, QpNum n, QpType t, QpHostRings *r,
              CqRing *s, CqRing *rc)
        : nic(nic_ref), num(n), type(t), rings(r), scq(s), rcq(rc)
    {}

    QpipNic &nic;
    QpNum num;
    QpType type;
    QpHostRings *rings;
    CqRing *scq;
    CqRing *rcq;

    /** Receive WRs come from here instead of rings->recvQ when set. */
    SrqContext *srq = nullptr;
    /** Non-zero: RDMA framing on, one-sided window in bytes. */
    std::uint32_t rdmaWindow = 0;

    inet::SockAddr local;
    bool bound = false;
    std::unique_ptr<inet::TcpConnection> conn;
    bool connected = false;
    ConnectCb connectDone;
    AcceptCb acceptDone;

    // NIC-side shadow of the host work queues (what the doorbell FSM
    // maintains in the QPIP state table).
    std::uint64_t sendSeen = 0;
    std::uint64_t sendConsumed = 0;
    std::uint64_t recvSeen = 0;
    std::uint64_t recvConsumed = 0;
    std::uint32_t postedRecvCount = 0;
    std::uint64_t postedRecvBytes = 0;

    /** What an unacked TCP message was carrying. */
    enum class TxKind : std::uint8_t {
        Send,    ///< a plain send WR: completes on the TCP ACK
        RdmaReq, ///< Write/ReadReq: completes on the explicit response
        FwResp,  ///< firmware-generated WriteAck/ReadResp: no WR
    };

    struct Inflight
    {
        std::uint64_t tag = 0;
        TxKind kind = TxKind::Send;
        SendWr wr;
    };

    // Sent-but-unacked TCP messages, ACKed in FIFO order.
    std::deque<Inflight> inflightSends;
    std::uint64_t nextTag = 1;

    // One-sided ops awaiting their response, answered in FIFO order
    // (responses ride the same TCP stream as the requests).
    std::deque<std::pair<std::uint64_t, SendWr>> pendingRdma;
    std::uint64_t nextRdmaId = 1;

    bool
    recvWrAvailable() const
    {
        return srq != nullptr ? srq->postedCount > 0
                              : postedRecvCount > 0;
    }

    // --- inet::UdpEndpoint --------------------------------------------
    void
    udpDeliver(std::vector<std::uint8_t> &&msg,
               const inet::SockAddr &from) override
    {
        if (!recvWrAvailable()) {
            // Unreliable service: no posted WR, the datagram is gone.
            if (srq != nullptr)
                nic.srqEmptyDrops.inc();
            else
                nic.udpNoWrDrops.inc();
            return;
        }
        nic.receiveIntoWr(*this, std::move(msg), from);
    }

    // --- TcpObserver --------------------------------------------------
    void
    onConnected(inet::TcpConnection &) override
    {
        connected = true;
        if (connectDone) {
            auto cb = std::move(connectDone);
            nic.schedule(nic.fw_.busyUntil(), [cb] { cb(true); });
        }
        if (acceptDone) {
            auto cb = std::move(acceptDone);
            const QpNum qp = num;
            nic.schedule(nic.fw_.busyUntil(), [cb, qp] { cb(qp); });
        }
    }

    bool
    canAcceptMessage(inet::TcpConnection &,
                     std::span<const std::uint8_t> payload) override
    {
        // One-sided ops and responses consume no receive WR: peek the
        // framing opcode and wave anything but a Send through.
        if (rdmaWindow > 0 && !payload.empty() &&
            payload[0] !=
                static_cast<std::uint8_t>(net::RdmaOpcode::Send)) {
            return true;
        }
        const bool avail = recvWrAvailable();
        if (!avail && srq != nullptr)
            nic.srqRnrHolds.inc();
        return avail;
    }

    void
    onMessage(inet::TcpConnection &conn_ref,
              std::vector<std::uint8_t> &&msg) override
    {
        if (rdmaWindow > 0) {
            nic.handleRdmaMessage(*this, std::move(msg),
                                  conn_ref.tuple().remote);
            return;
        }
        nic.receiveIntoWr(*this, std::move(msg),
                          conn_ref.tuple().remote);
    }

    void
    onMessageAcked(inet::TcpConnection &, std::uint64_t tag) override
    {
        if (inflightSends.empty() || inflightSends.front().tag != tag)
            sim::panic("qp%u: send completion out of order", num);
        Inflight fly = std::move(inflightSends.front());
        inflightSends.pop_front();
        nic.touchQpContext(num);
        // Table 3 "Update" (ACK): WR status + QP state writeback.
        nic.fw_.charge(FwStage::UpdateRx, nic.costs().updateRxAck);
        if (fly.kind != TxKind::Send) {
            // One-sided requests complete on their response;
            // firmware responses carry no WR at all.
            return;
        }
        Completion c;
        c.wrId = fly.wr.id;
        c.qp = num;
        c.isSend = true;
        c.status = WcStatus::Success;
        c.byteLen = fly.wr.sge.length;
        nic.pushCompletion(scq, c);
    }

    void
    onPeerClosed(inet::TcpConnection &conn_ref) override
    {
        // A QP channel is torn down as a unit: answer the peer's FIN
        // with our own so the connection fully closes and outstanding
        // WRs flush.
        conn_ref.close();
    }

    void
    onReset(inet::TcpConnection &) override
    {
        connected = false;
        if (connectDone) {
            auto cb = std::move(connectDone);
            nic.schedule(nic.curTick(), [cb] { cb(false); });
        }
        nic.flushQp(*this, WcStatus::RemoteReset);
    }

    void
    onClosed(inet::TcpConnection &) override
    {
        connected = false;
        nic.flushQp(*this, WcStatus::Flushed);
    }

    std::uint32_t
    receiveWindow(inet::TcpConnection &) override
    {
        // Posted receive-WR bytes (own ring or the shared queue's),
        // plus the standing one-sided window on RDMA-enabled QPs so
        // Write/Read traffic flows with zero WRs posted.
        const std::uint64_t posted =
            srq != nullptr ? srq->postedBytes : postedRecvBytes;
        return static_cast<std::uint32_t>(std::min<std::uint64_t>(
            posted + rdmaWindow, 0xffffffffull));
    }
};

// ---------------------------------------------------------------------
// Construction / management FSM
// ---------------------------------------------------------------------

QpipNic::QpipNic(sim::Simulation &sim, std::string name, net::Link &link,
                 net::NodeId node, QpipNicParams params)
    : SimObject(sim, std::move(name)), link_(link), node_(node),
      params_(params),
      fw_(sim, this->name() + ".fw", params.costs.freqHz),
      dmaIn_(sim, this->name() + ".dma_in", params.dma),
      dmaOut_(sim, this->name() + ".dma_out", params.dma),
      doorbells_(sim, this->name() + ".doorbells", params.doorbellCap),
      qpCache_(params.qpCacheCapacity), inet_(*this, params.reassExpiry),
      badPackets(inet_.badFrames), noQpDrops(inet_.noMatchDrops)
{
    // Force the prototype's transport subset regardless of overrides.
    params_.tcp.messageMode = true;
    params_.tcp.reassembly = false;
    regStat("badPackets", badPackets);
    regStat("noQpDrops", noQpDrops);
    regStat("udpNoWrDrops", udpNoWrDrops);
    regStat("cqOverflows", cqOverflows);
    regStat("rdma.writes", rdmaWrites);
    regStat("rdma.reads", rdmaReads);
    regStat("rdma.remoteErrors", rdmaRemoteErrors);
    regStat("rdma.malformed", rdmaMalformed);
    regStat("srq.rnrHolds", srqRnrHolds);
    regStat("srq.emptyDrops", srqEmptyDrops);
    regStat("qpCache.hits", qpCache_.hits);
    regStat("qpCache.misses", qpCache_.misses);
    regStat("qpCache.evictions", qpCache_.evictions);
    regStat("qpCache.writebacks", ctxWritebacks);
    regStat("reass.fragmentsIn", inet_.reassembler().fragmentsIn);
    regStat("reass.reassembled", inet_.reassembler().reassembled);
    regStat("reass.expired", inet_.reassembler().expired);
    link_.attach(0, *this);
    doorbells_.setDrainHook([this] {
        if (!drainActive_) {
            drainActive_ = true;
            doorbellDrain();
        }
    });
}

QpipNic::~QpipNic()
{
    // Expire the liveness token first: QueuePair/MemoryRegion
    // destructors reached from the QP contexts below must not call
    // back into this object.
    aliveToken_.reset();
}

void
QpipNic::setAddress(const inet::InetAddr &addr)
{
    addr_ = addr;
}

MrKey
QpipNic::registerMemory(std::uint8_t *base, std::size_t bytes,
                        MrAccess access)
{
    fw_.charge(FwStage::Mgmt, params_.costs.mgmtCommand);
    return mrs_.registerMemory(base, bytes, access);
}

void
QpipNic::deregisterMemory(MrKey key)
{
    fw_.charge(FwStage::Mgmt, params_.costs.mgmtCommand);
    mrs_.deregister(key);
}

QpNum
QpipNic::createQp(QpType type, QpHostRings *rings, CqRing *scq,
                  CqRing *rcq, const QpCreateAttrs &attrs)
{
    fw_.charge(FwStage::Mgmt, params_.costs.mgmtCommand);
    const QpNum num = nextQpNum_++;
    auto ctx = std::make_unique<QpContext>(*this, num, type, rings,
                                           scq, rcq);
    if (attrs.srq != invalidSrq) {
        auto it = srqs_.find(attrs.srq);
        if (it == srqs_.end())
            sim::fatal("createQp: unknown srq %u", attrs.srq);
        ctx->srq = it->second.get();
        ctx->srq->attached.push_back(ctx.get());
    }
    if (attrs.rdmaWindowBytes > 0) {
        if (type != QpType::ReliableTcp)
            sim::fatal("createQp: RDMA framing needs a reliable QP");
        ctx->rdmaWindow = attrs.rdmaWindowBytes;
    }
    qps_[num] = std::move(ctx);
    // The management FSM builds the context in SRAM; whatever it
    // displaces goes back to host memory.
    if (qpCache_.install(num) != invalidQp) {
        ctxWritebacks.inc();
        fw_.charge(FwStage::CtxFetch, params_.costs.qpCtxWriteback);
    }
    return num;
}

void
QpipNic::destroyQp(QpNum qp)
{
    auto *ctx = lookupQp(qp);
    if (ctx == nullptr)
        return;
    fw_.charge(FwStage::Mgmt, params_.costs.mgmtCommand);
    if (ctx->conn) {
        connOwner_.erase(ctx->conn.get());
        inet_.unregisterConn(ctx->conn->tuple());
        ctx->conn->abort();
    }
    if (ctx->bound && ctx->type == QpType::UnreliableUdp)
        inet_.unbindUdp(ctx->local.port);
    flushQp(*ctx, WcStatus::Flushed);
    if (ctx->srq != nullptr) {
        auto &att = ctx->srq->attached;
        att.erase(std::remove(att.begin(), att.end(), ctx), att.end());
    }
    qpCache_.remove(qp);
    qps_.erase(qp);
}

SrqNum
QpipNic::createSrq(SrqHostRing *ring)
{
    fw_.charge(FwStage::Mgmt, params_.costs.mgmtCommand);
    const SrqNum num = nextSrqNum_++;
    auto ctx = std::make_unique<SrqContext>();
    ctx->num = num;
    ctx->ring = ring;
    srqs_[num] = std::move(ctx);
    return num;
}

void
QpipNic::destroySrq(SrqNum srq)
{
    auto it = srqs_.find(srq);
    if (it == srqs_.end())
        return;
    if (!it->second->attached.empty())
        sim::fatal("destroySrq: srq %u still has %zu attached QPs",
                   srq, it->second->attached.size());
    fw_.charge(FwStage::Mgmt, params_.costs.mgmtCommand);
    srqs_.erase(it);
}

void
QpipNic::bindLocal(QpNum qp, std::uint16_t port)
{
    auto *ctx = lookupQp(qp);
    if (ctx == nullptr)
        sim::fatal("bindLocal: unknown qp %u", qp);
    fw_.charge(FwStage::Mgmt, params_.costs.mgmtCommand);
    ctx->local = inet::SockAddr{addr_, port};
    ctx->bound = true;
    if (ctx->type == QpType::UnreliableUdp) {
        if (!inet_.bindUdp(port, ctx))
            sim::fatal("udp port %u already bound on %s", port,
                       name().c_str());
    }
}

void
QpipNic::connect(QpNum qp, const inet::SockAddr &remote, ConnectCb done)
{
    auto *ctx = lookupQp(qp);
    if (ctx == nullptr || ctx->type != QpType::ReliableTcp)
        sim::fatal("connect: bad qp %u", qp);
    if (!ctx->bound) {
        ctx->local = inet::SockAddr{addr_, ephemeralPort_++};
        ctx->bound = true;
    }
    ctx->connectDone = std::move(done);
    fw_.exec(FwStage::Mgmt, params_.costs.mgmtCommand,
             [this, ctx, remote] {
                 // Destroy any previous connection first so its stat
                 // paths vacate before the new one claims them.
                 if (ctx->conn) {
                     connOwner_.erase(ctx->conn.get());
                     inet_.unregisterConn(ctx->conn->tuple());
                     ctx->conn.reset();
                 }
                 ctx->conn = std::make_unique<inet::TcpConnection>(
                     inet_, *ctx, params_.tcp);
                 ctx->conn->stats().registerIn(
                     statRegistry(), name() + ".qp" +
                                         std::to_string(ctx->num) +
                                         ".tcp");
                 inet::FourTuple t{ctx->local, remote};
                 inet_.registerConn(t, ctx->conn.get());
                 connOwner_[ctx->conn.get()] = ctx;
                 ctx->conn->openActive(ctx->local, remote);
             });
}

void
QpipNic::acceptOn(std::uint16_t port, QpNum qp, AcceptCb done)
{
    auto *ctx = lookupQp(qp);
    if (ctx == nullptr || ctx->type != QpType::ReliableTcp)
        sim::fatal("acceptOn: bad qp %u", qp);
    fw_.charge(FwStage::Mgmt, params_.costs.mgmtCommand);
    ctx->acceptDone = std::move(done);
    listeners_[port].push_back(PendingAccept{qp, nullptr});
}

void
QpipNic::disconnect(QpNum qp)
{
    auto *ctx = lookupQp(qp);
    if (ctx == nullptr || !ctx->conn)
        return;
    fw_.exec(FwStage::Mgmt, params_.costs.mgmtCommand, [ctx] {
        if (ctx->conn)
            ctx->conn->close();
    });
}

QpipNic::QpContext *
QpipNic::lookupQp(QpNum qp)
{
    auto it = qps_.find(qp);
    return it == qps_.end() ? nullptr : it->second.get();
}

inet::TcpConnection *
QpipNic::connectionOf(QpNum qp)
{
    auto *ctx = lookupQp(qp);
    return ctx != nullptr ? ctx->conn.get() : nullptr;
}

// ---------------------------------------------------------------------
// Doorbell FSM
// ---------------------------------------------------------------------

void
QpipNic::postDoorbell(QpNum qp, bool is_send)
{
    doorbells_.ring(Doorbell{qp, is_send, false});
}

void
QpipNic::postSrqDoorbell(SrqNum srq)
{
    doorbells_.ring(Doorbell{srq, false, true});
}

void
QpipNic::doorbellDrain()
{
    Doorbell db;
    if (!doorbells_.pop(db)) {
        drainActive_ = false;
        return;
    }
    sim::Cycles c = params_.costs.doorbellProcess;
    if (!params_.costs.hwDoorbell) {
        c = static_cast<sim::Cycles>(static_cast<double>(c) *
                                     params_.costs.swDoorbellFactor);
    }
    fw_.exec(FwStage::DoorbellProcess, c, [this, db] {
        if (db.isSrq) {
            auto it = srqs_.find(db.qp);
            if (it != srqs_.end()) {
                auto &srq = *it->second;
                const std::uint64_t total =
                    srq.consumed + srq.ring->recvQ.size();
                const std::uint64_t fresh = total - srq.seen;
                srq.seen = total;
                const auto &q = srq.ring->recvQ;
                for (std::uint64_t i = 0; i < fresh; ++i) {
                    const auto &wr = q[q.size() - fresh + i];
                    ++srq.postedCount;
                    srq.postedBytes += wr.sge.length;
                }
                if (fresh > 0) {
                    // Replenish fan-out, in attach order: any held
                    // message on an attached connection may land now.
                    for (auto *ctx : srq.attached) {
                        if (ctx->conn)
                            ctx->conn->onReceiveWindowGrew();
                    }
                }
            }
        } else if (auto *ctx = lookupQp(db.qp); ctx != nullptr) {
            touchQpContext(db.qp);
            if (db.isSend) {
                const std::uint64_t total =
                    ctx->sendConsumed + ctx->rings->sendQ.size();
                const std::uint64_t fresh = total - ctx->sendSeen;
                ctx->sendSeen = total;
                for (std::uint64_t i = 0; i < fresh; ++i)
                    scheduleSendService(*ctx);
            } else {
                const std::uint64_t total =
                    ctx->recvConsumed + ctx->rings->recvQ.size();
                const std::uint64_t fresh = total - ctx->recvSeen;
                ctx->recvSeen = total;
                // The new WRs sit at the back of the host ring.
                const auto &q = ctx->rings->recvQ;
                for (std::uint64_t i = 0; i < fresh; ++i) {
                    const auto &wr = q[q.size() - fresh + i];
                    ++ctx->postedRecvCount;
                    ctx->postedRecvBytes += wr.sge.length;
                }
                if (fresh > 0 && ctx->conn)
                    ctx->conn->onReceiveWindowGrew();
            }
        }
        doorbellDrain();
    });
}

void
QpipNic::touchQpContext(QpNum qp)
{
    if (!qpCache_.enabled())
        return;
    const auto t = qpCache_.touch(qp);
    if (t.hit)
        return;
    sim::Cycles c = params_.costs.qpCtxFetch;
    if (t.evicted != invalidQp) {
        ctxWritebacks.inc();
        c += params_.costs.qpCtxWriteback;
    }
    fw_.charge(FwStage::CtxFetch, c);
}

// ---------------------------------------------------------------------
// Scheduler / transmit FSM
// ---------------------------------------------------------------------

void
QpipNic::scheduleSendService(QpContext &qp)
{
    fw_.exec(FwStage::Schedule, params_.costs.schedule,
             [this, &qp] { serviceSendWr(qp); });
}

void
QpipNic::serviceSendWr(QpContext &qp)
{
    fw_.exec(FwStage::GetWr, params_.costs.getWr, [this, &qp] {
        if (qp.rings->sendQ.empty())
            return; // raced with destroy/flush
        SendWr wr = qp.rings->sendQ.front();
        qp.rings->sendQ.pop_front();
        ++qp.sendConsumed;
        touchQpContext(qp.num);

        if (wr.opcode != WrOpcode::Send &&
            (qp.type != QpType::ReliableTcp || qp.rdmaWindow == 0)) {
            sim::panic("qp%u: one-sided WR on a non-RDMA QP", qp.num);
        }

        if (wr.opcode == WrOpcode::RdmaRead) {
            serviceRdmaRead(qp, std::move(wr));
            return;
        }

        std::uint8_t *src = mrs_.resolve(wr.sge);
        // A Write whose framed message exceeds the peer's standing
        // one-sided window could never leave the send queue (the
        // receiver posts no WRs for it); fail it deterministically.
        const bool oversize =
            wr.opcode == WrOpcode::RdmaWrite &&
            net::rdmaHeaderBytes(net::RdmaOpcode::Write) +
                    wr.sge.length >
                qp.rdmaWindow;
        if (src == nullptr || oversize) {
            Completion c;
            c.wrId = wr.id;
            c.qp = qp.num;
            c.isSend = true;
            c.opcode = wr.opcode;
            c.status = WcStatus::LengthError;
            pushCompletion(qp.scq, c);
            return;
        }

        // Get Data: program the DMA engine, then stage the payload
        // from host memory into NIC SRAM. The firmware is occupied
        // for the descriptor work plus whichever of (SRAM staging,
        // DMA transfer) dominates.
        const std::size_t len = wr.sge.length;
        const Tick begin = std::max(curTick(), fw_.busyUntil());
        const Tick fixed = fw_.clock().cyclesToTicks(
            params_.costs.getDataFixed);
        const Tick touch = fw_.clock().cyclesToTicks(
            static_cast<sim::Cycles>(params_.costs.touchPerByte *
                                     static_cast<double>(len)));
        const Tick dma = dmaIn_.chargeAt(begin, len) - begin;
        fw_.chargeTicks(FwStage::GetData,
                        fixed + std::max(touch, dma));

        std::vector<std::uint8_t> data(src, src + len);
        schedule(fw_.busyUntil(),
                 [this, &qp, wr = std::move(wr),
                  data = std::move(data)]() mutable {
                     if (qp.type == QpType::ReliableTcp) {
                         sendTcpMessage(qp, std::move(wr),
                                        std::move(data));
                     } else {
                         sendUdpMessage(qp, std::move(wr),
                                        std::move(data));
                     }
                 });
    });
}

void
QpipNic::sendTcpMessage(QpContext &qp, SendWr wr,
                        std::vector<std::uint8_t> data)
{
    if (!qp.conn) {
        Completion c;
        c.wrId = wr.id;
        c.qp = qp.num;
        c.isSend = true;
        c.opcode = wr.opcode;
        c.status = WcStatus::Flushed;
        pushCompletion(qp.scq, c);
        return;
    }
    const std::uint64_t tag = qp.nextTag++;
    if (qp.rdmaWindow == 0) {
        // Legacy framing: the message is the raw payload.
        qp.inflightSends.push_back(
            {tag, QpContext::TxKind::Send, wr});
        qp.conn->sendMessage(std::move(data), tag);
        return;
    }
    net::RdmaHeader h;
    if (wr.opcode == WrOpcode::Send) {
        h.opcode = net::RdmaOpcode::Send;
        qp.inflightSends.push_back(
            {tag, QpContext::TxKind::Send, wr});
    } else {
        h.opcode = net::RdmaOpcode::Write;
        h.opId = qp.nextRdmaId++;
        h.raddr = wr.raddr;
        h.rkey = wr.rkey;
        fw_.charge(FwStage::RdmaExec, params_.costs.rdmaHeaderBuild);
        if (tracer()->enabled()) {
            tracer()->instant(name(), "rdma write req", curTick(),
                              "{\"qp\":" + std::to_string(qp.num) +
                                  ",\"bytes\":" +
                                  std::to_string(wr.sge.length) + "}");
        }
        qp.inflightSends.push_back(
            {tag, QpContext::TxKind::RdmaReq, wr});
        qp.pendingRdma.emplace_back(h.opId, wr);
    }
    qp.conn->sendMessage(net::serializeRdmaMessage(h, data), tag);
}

void
QpipNic::serviceRdmaRead(QpContext &qp, SendWr wr)
{
    // The WR's SGE is the local landing buffer. Validate it — and
    // that the response message can traverse our own standing
    // window — before anything crosses the wire.
    std::uint8_t *dst = mrs_.resolve(wr.sge);
    const bool oversize =
        net::rdmaHeaderBytes(net::RdmaOpcode::ReadResp) +
            wr.sge.length >
        qp.rdmaWindow;
    if (dst == nullptr || oversize) {
        Completion c;
        c.wrId = wr.id;
        c.qp = qp.num;
        c.isSend = true;
        c.opcode = wr.opcode;
        c.status = WcStatus::LengthError;
        pushCompletion(qp.scq, c);
        return;
    }
    fw_.charge(FwStage::RdmaExec, params_.costs.rdmaHeaderBuild);
    schedule(fw_.busyUntil(), [this, &qp, wr]() mutable {
        if (!qp.conn) {
            Completion c;
            c.wrId = wr.id;
            c.qp = qp.num;
            c.isSend = true;
            c.opcode = wr.opcode;
            c.status = WcStatus::Flushed;
            pushCompletion(qp.scq, c);
            return;
        }
        net::RdmaHeader h;
        h.opcode = net::RdmaOpcode::ReadReq;
        h.opId = qp.nextRdmaId++;
        h.raddr = wr.raddr;
        h.rkey = wr.rkey;
        h.length = static_cast<std::uint32_t>(wr.sge.length);
        if (tracer()->enabled()) {
            tracer()->instant(name(), "rdma read req", curTick(),
                              "{\"qp\":" + std::to_string(qp.num) +
                                  ",\"bytes\":" +
                                  std::to_string(wr.sge.length) + "}");
        }
        const std::uint64_t tag = qp.nextTag++;
        qp.inflightSends.push_back(
            {tag, QpContext::TxKind::RdmaReq, wr});
        qp.pendingRdma.emplace_back(h.opId, wr);
        qp.conn->sendMessage(net::serializeRdmaMessage(h, {}), tag);
    });
}

void
QpipNic::sendUdpMessage(QpContext &qp, SendWr wr,
                        std::vector<std::uint8_t> data)
{
    // Build UDP Hdr (charged under the header-build stage).
    fw_.charge(FwStage::BuildTcpHdr, params_.costs.buildUdpHdr);
    IpDatagram dgram;
    dgram.src = qp.local.addr;
    dgram.dst = wr.remote.addr;
    dgram.proto = IpProto::Udp;
    dgram.payload = inet::serializeUdp(qp.local.addr, wr.remote.addr,
                                       qp.local.port, wr.remote.port,
                                       data);
    const auto res = inet_.ipOutput(std::move(dgram));

    // "As soon as a UDP message is sent, the associated send WR is
    // marked as complete." An oversized message reports the verbs
    // moral equivalent of EMSGSIZE.
    fw_.charge(FwStage::UpdateTx, params_.costs.updateTxData);
    Completion c;
    c.wrId = wr.id;
    c.qp = qp.num;
    c.isSend = true;
    c.status = res == inet::IpSendResult::MsgSize
                   ? WcStatus::LengthError
                   : WcStatus::Success;
    c.byteLen = wr.sge.length;
    pushCompletion(qp.scq, c);
}

void
QpipNic::emitTcpSegment(IpDatagram &&dgram, const inet::TcpSegMeta &meta)
{
    // Pure ACKs and scheduler-driven retransmits pass the notify and
    // schedule stages too (the paper's Table 2 "ACK Send" column).
    if (meta.pureAck || meta.retransmit) {
        fw_.charge(FwStage::DoorbellProcess,
                   params_.costs.doorbellProcess);
        fw_.charge(FwStage::Schedule, params_.costs.schedule);
    }
    fw_.charge(FwStage::BuildTcpHdr, params_.costs.buildTcpHdr);
    inet_.ipOutput(std::move(dgram));
    fw_.charge(FwStage::UpdateTx, meta.pureAck
                                      ? params_.costs.updateTxAck
                                      : params_.costs.updateTxData);
}

std::optional<std::uint32_t>
QpipNic::txMtu()
{
    return link_.config().mtu;
}

void
QpipNic::chargeIpHeaderTx()
{
    fw_.charge(FwStage::BuildIpHdr, params_.costs.buildIpHdr);
}

void
QpipNic::chargeFragmentsTx(std::size_t extra)
{
    fw_.charge(FwStage::Fragment,
               params_.costs.perFragmentTx *
                   static_cast<sim::Cycles>(extra));
}

void
QpipNic::chargeMediaSend()
{
    fw_.charge(FwStage::MediaSend, params_.costs.mediaSend);
}

void
QpipNic::wireTx(std::vector<std::vector<std::uint8_t>> &&frames,
                bool ipv6, net::NodeId dst_node)
{
    schedule(fw_.busyUntil(),
             [this, ipv6, dst_node,
              frames = std::move(frames)]() mutable {
                 for (auto &frame : frames) {
                     auto pkt = net::makePacket();
                     pkt->src = node_;
                     pkt->dst = dst_node;
                     pkt->proto = ipv6 ? net::NetProto::Ipv6
                                       : net::NetProto::Ipv4;
                     pkt->data = std::move(frame);
                     link_.send(0, pkt);
                 }
             });
}

// ---------------------------------------------------------------------
// Receive FSM
// ---------------------------------------------------------------------

void
QpipNic::onPacket(net::PacketPtr pkt)
{
    fw_.exec(FwStage::MediaRcv, params_.costs.mediaRcv,
             [this, pkt] { inet_.wireInput(pkt->proto, pkt->data); });
}

void
QpipNic::chargeRxFrame(std::size_t wire_bytes)
{
    if (!params_.costs.hwChecksumRx) {
        fw_.charge(FwStage::Checksum,
                   params_.costs.fwChecksumFixed +
                       static_cast<sim::Cycles>(
                           params_.costs.fwChecksumPerByte *
                           static_cast<double>(wire_bytes)));
    }
}

void
QpipNic::chargeIpParsed(bool fragment)
{
    sim::Cycles ip_cycles = params_.costs.ipParse;
    if (fragment)
        ip_cycles += params_.costs.perFragmentRx;
    fw_.charge(FwStage::IpParse, ip_cycles);
    if (fragment)
        fw_.charge(FwStage::Reassembly, 0); // stage marker only
}

void
QpipNic::chargeTcpInput(std::size_t, bool pure_ack)
{
    sim::Cycles c = params_.costs.tcpParseData;
    if (pure_ack && !params_.costs.hwMultiply)
        c += params_.costs.tcpParseAckExtra;
    if (params_.costs.hwDemux) {
        const sim::Cycles demux = FirmwareCostModel::us(1.5);
        c = c > demux ? c - demux : 0;
    }
    fw_.charge(FwStage::TcpParse, c);
}

void
QpipNic::chargeUdpPreParse()
{
    fw_.charge(FwStage::UdpParse, params_.costs.udpParse);
}

bool
QpipNic::tcpAccept(const inet::FourTuple &t, const inet::TcpHeader &syn)
{
    // Connection rendezvous: mate an incoming SYN to an idle QP the
    // host queued on this monitored port.
    auto lit = listeners_.find(syn.dstPort);
    if (lit == listeners_.end() || lit->second.empty())
        return false;
    PendingAccept pa = std::move(lit->second.front());
    lit->second.pop_front();
    auto *ctx = lookupQp(pa.qp);
    if (ctx == nullptr)
        return false;
    ctx->local = t.local;
    ctx->bound = true;
    if (ctx->conn) {
        connOwner_.erase(ctx->conn.get());
        inet_.unregisterConn(ctx->conn->tuple());
        ctx->conn.reset();
    }
    ctx->conn = std::make_unique<inet::TcpConnection>(inet_, *ctx,
                                                      params_.tcp);
    ctx->conn->stats().registerIn(
        statRegistry(),
        name() + ".qp" + std::to_string(ctx->num) + ".tcp");
    inet_.registerConn(t, ctx->conn.get());
    connOwner_[ctx->conn.get()] = ctx;
    ctx->conn->openPassive(t.local, t.remote, syn);
    return true;
}

void
QpipNic::receiveIntoWr(QpContext &qp, std::vector<std::uint8_t> msg,
                       const inet::SockAddr &from)
{
    touchQpContext(qp.num);
    RecvWr wr;
    if (qp.srq != nullptr) {
        auto &srq = *qp.srq;
        if (srq.postedCount == 0 || srq.ring->recvQ.empty())
            sim::panic("receiveIntoWr without a posted SRQ WR");
        wr = srq.ring->recvQ.front();
        srq.ring->recvQ.pop_front();
        ++srq.consumed;
        --srq.postedCount;
        srq.postedBytes -= wr.sge.length;
    } else {
        if (qp.postedRecvCount == 0 || qp.rings->recvQ.empty())
            sim::panic("receiveIntoWr without a posted WR");
        wr = qp.rings->recvQ.front();
        qp.rings->recvQ.pop_front();
        ++qp.recvConsumed;
        --qp.postedRecvCount;
        qp.postedRecvBytes -= wr.sge.length;
    }

    fw_.exec(FwStage::GetWr, params_.costs.getWr,
             [this, &qp, wr, msg = std::move(msg), from]() mutable {
                 std::uint8_t *dst = mrs_.resolve(wr.sge);
                 Completion c;
                 c.wrId = wr.id;
                 c.qp = qp.num;
                 c.isSend = false;
                 c.from = from;
                 if (dst == nullptr || msg.size() > wr.sge.length) {
                     c.status = WcStatus::LengthError;
                     c.byteLen = msg.size();
                     fw_.charge(FwStage::UpdateRx,
                                params_.costs.updateRxData);
                     pushCompletion(qp.rcq, c);
                     return;
                 }
                 // Put Data: DMA from NIC SRAM into the posted
                 // buffer (same shape as Get Data).
                 const Tick begin =
                     std::max(curTick(), fw_.busyUntil());
                 const Tick fixed = fw_.clock().cyclesToTicks(
                     params_.costs.putDataFixed);
                 const Tick touch = fw_.clock().cyclesToTicks(
                     static_cast<sim::Cycles>(
                         params_.costs.touchPerByte *
                         static_cast<double>(msg.size())));
                 const Tick dma =
                     dmaOut_.chargeAt(begin, msg.size()) - begin;
                 fw_.chargeTicks(FwStage::PutData,
                                 fixed + std::max(touch, dma));
                 std::copy(msg.begin(), msg.end(), dst);
                 c.status = WcStatus::Success;
                 c.byteLen = msg.size();
                 fw_.charge(FwStage::UpdateRx,
                            params_.costs.updateRxData);
                 pushCompletion(qp.rcq, c);
             });
}

// ---------------------------------------------------------------------
// One-sided RDMA engine
// ---------------------------------------------------------------------

void
QpipNic::handleRdmaMessage(QpContext &qp, std::vector<std::uint8_t> msg,
                           const inet::SockAddr &from)
{
    touchQpContext(qp.num);
    fw_.exec(FwStage::RdmaExec, params_.costs.rdmaParse,
             [this, &qp, msg = std::move(msg), from]() mutable {
                 net::RdmaHeader h;
                 std::span<const std::uint8_t> payload;
                 if (!net::parseRdmaMessage(msg, h, payload)) {
                     rdmaMalformed.inc();
                     return;
                 }
                 switch (h.opcode) {
                   case net::RdmaOpcode::Send:
                     receiveIntoWr(qp,
                                   std::vector<std::uint8_t>(
                                       payload.begin(), payload.end()),
                                   from);
                     break;
                   case net::RdmaOpcode::Write:
                     executeRdmaWrite(qp, h, payload);
                     break;
                   case net::RdmaOpcode::ReadReq:
                     executeRdmaRead(qp, h);
                     break;
                   case net::RdmaOpcode::WriteAck:
                   case net::RdmaOpcode::ReadResp:
                     completeRdmaOp(qp, h, payload);
                     break;
                 }
             });
}

void
QpipNic::executeRdmaWrite(QpContext &qp, const net::RdmaHeader &hdr,
                          std::span<const std::uint8_t> payload)
{
    net::RdmaHeader resp;
    resp.opcode = net::RdmaOpcode::WriteAck;
    resp.opId = hdr.opId;

    const Sge target{hdr.rkey,
                     static_cast<std::size_t>(hdr.raddr),
                     payload.size()};
    std::uint8_t *dst = mrs_.resolve(target, accessRemoteWrite);
    if (dst == nullptr) {
        rdmaRemoteErrors.inc();
        resp.status = net::RdmaWireStatus::RemoteAccess;
        sendRdmaResponse(qp, resp, {});
        return;
    }
    // Put Data: DMA the payload from NIC SRAM into the target region
    // (same shape as the two-sided receive path).
    const Tick begin = std::max(curTick(), fw_.busyUntil());
    const Tick fixed =
        fw_.clock().cyclesToTicks(params_.costs.putDataFixed);
    const Tick touch = fw_.clock().cyclesToTicks(
        static_cast<sim::Cycles>(params_.costs.touchPerByte *
                                 static_cast<double>(payload.size())));
    const Tick dma = dmaOut_.chargeAt(begin, payload.size()) - begin;
    fw_.chargeTicks(FwStage::PutData, fixed + std::max(touch, dma));
    std::copy(payload.begin(), payload.end(), dst);
    fw_.charge(FwStage::UpdateRx, params_.costs.updateRxData);
    rdmaWrites.inc();
    if (tracer()->enabled()) {
        tracer()->instant(name(), "rdma write exec", curTick(),
                          "{\"qp\":" + std::to_string(qp.num) +
                              ",\"bytes\":" +
                              std::to_string(payload.size()) + "}");
    }
    sendRdmaResponse(qp, resp, {});
}

void
QpipNic::executeRdmaRead(QpContext &qp, const net::RdmaHeader &hdr)
{
    net::RdmaHeader resp;
    resp.opcode = net::RdmaOpcode::ReadResp;
    resp.opId = hdr.opId;

    const Sge source{hdr.rkey,
                     static_cast<std::size_t>(hdr.raddr),
                     static_cast<std::size_t>(hdr.length)};
    const std::uint8_t *src = mrs_.resolve(source, accessRemoteRead);
    if (src == nullptr) {
        rdmaRemoteErrors.inc();
        resp.status = net::RdmaWireStatus::RemoteAccess;
        sendRdmaResponse(qp, resp, {});
        return;
    }
    // Get Data: stage the requested range from host memory into NIC
    // SRAM for transmission (mirror of the transmit path).
    const Tick begin = std::max(curTick(), fw_.busyUntil());
    const Tick fixed =
        fw_.clock().cyclesToTicks(params_.costs.getDataFixed);
    const Tick touch = fw_.clock().cyclesToTicks(
        static_cast<sim::Cycles>(params_.costs.touchPerByte *
                                 static_cast<double>(hdr.length)));
    const Tick dma = dmaIn_.chargeAt(begin, hdr.length) - begin;
    fw_.chargeTicks(FwStage::GetData, fixed + std::max(touch, dma));
    rdmaReads.inc();
    if (tracer()->enabled()) {
        tracer()->instant(name(), "rdma read exec", curTick(),
                          "{\"qp\":" + std::to_string(qp.num) +
                              ",\"bytes\":" +
                              std::to_string(hdr.length) + "}");
    }
    sendRdmaResponse(qp, resp, {src, src + hdr.length});
}

void
QpipNic::sendRdmaResponse(QpContext &qp, net::RdmaHeader hdr,
                          std::span<const std::uint8_t> payload)
{
    fw_.charge(FwStage::RdmaExec, params_.costs.rdmaRespBuild);
    auto bytes = net::serializeRdmaMessage(hdr, payload);
    schedule(fw_.busyUntil(),
             [this, &qp, bytes = std::move(bytes)]() mutable {
                 if (!qp.conn)
                     return; // torn down before the response left
                 const std::uint64_t tag = qp.nextTag++;
                 qp.inflightSends.push_back(
                     {tag, QpContext::TxKind::FwResp, SendWr{}});
                 qp.conn->sendMessage(std::move(bytes), tag);
             });
}

void
QpipNic::completeRdmaOp(QpContext &qp, const net::RdmaHeader &hdr,
                        std::span<const std::uint8_t> payload)
{
    if (qp.pendingRdma.empty() ||
        qp.pendingRdma.front().first != hdr.opId) {
        sim::panic("qp%u: rdma response out of order", qp.num);
    }
    SendWr wr = std::move(qp.pendingRdma.front().second);
    qp.pendingRdma.pop_front();

    Completion c;
    c.wrId = wr.id;
    c.qp = qp.num;
    c.isSend = true;
    c.opcode = wr.opcode;

    if (hdr.status != net::RdmaWireStatus::Ok) {
        c.status = WcStatus::RemoteAccessError;
        fw_.charge(FwStage::UpdateRx, params_.costs.updateRxData);
        pushCompletion(qp.scq, c);
        return;
    }

    if (hdr.opcode == net::RdmaOpcode::ReadResp) {
        std::uint8_t *dst = mrs_.resolve(wr.sge);
        if (dst == nullptr || payload.size() != wr.sge.length) {
            // Landing buffer vanished or the responder lied about
            // the length: surface it locally.
            c.status = WcStatus::LengthError;
            c.byteLen = payload.size();
            fw_.charge(FwStage::UpdateRx, params_.costs.updateRxData);
            pushCompletion(qp.scq, c);
            return;
        }
        // Put Data: land the read payload in the local buffer.
        const Tick begin = std::max(curTick(), fw_.busyUntil());
        const Tick fixed =
            fw_.clock().cyclesToTicks(params_.costs.putDataFixed);
        const Tick touch = fw_.clock().cyclesToTicks(
            static_cast<sim::Cycles>(
                params_.costs.touchPerByte *
                static_cast<double>(payload.size())));
        const Tick dma =
            dmaOut_.chargeAt(begin, payload.size()) - begin;
        fw_.chargeTicks(FwStage::PutData,
                        fixed + std::max(touch, dma));
        std::copy(payload.begin(), payload.end(), dst);
    }

    c.status = WcStatus::Success;
    c.byteLen = wr.sge.length;
    fw_.charge(FwStage::UpdateRx, params_.costs.updateRxData);
    pushCompletion(qp.scq, c);
}

// ---------------------------------------------------------------------
// Completions, teardown, env services
// ---------------------------------------------------------------------

void
QpipNic::pushCompletion(CqRing *cq, Completion c)
{
    if (cq == nullptr)
        return;
    const sim::Tick at = std::max(curTick(), fw_.busyUntil());
    c.completedAt = at;
    schedule(at, [this, cq, c] {
        if (!cq->push(c))
            cqOverflows.inc();
    });
}

void
QpipNic::flushQp(QpContext &qp, WcStatus status)
{
    while (!qp.inflightSends.empty()) {
        QpContext::Inflight fly = std::move(qp.inflightSends.front());
        qp.inflightSends.pop_front();
        // RdmaReq entries complete via pendingRdma (below); firmware
        // responses never surface a completion.
        if (fly.kind != QpContext::TxKind::Send)
            continue;
        Completion c;
        c.wrId = fly.wr.id;
        c.qp = qp.num;
        c.isSend = true;
        c.opcode = fly.wr.opcode;
        c.status = status;
        pushCompletion(qp.scq, c);
    }
    while (!qp.pendingRdma.empty()) {
        SendWr wr = std::move(qp.pendingRdma.front().second);
        qp.pendingRdma.pop_front();
        Completion c;
        c.wrId = wr.id;
        c.qp = qp.num;
        c.isSend = true;
        c.opcode = wr.opcode;
        c.status = status;
        pushCompletion(qp.scq, c);
    }
    while (!qp.rings->sendQ.empty()) {
        SendWr wr = qp.rings->sendQ.front();
        qp.rings->sendQ.pop_front();
        ++qp.sendConsumed;
        if (qp.sendSeen < qp.sendConsumed)
            qp.sendSeen = qp.sendConsumed;
        Completion c;
        c.wrId = wr.id;
        c.qp = qp.num;
        c.isSend = true;
        c.opcode = wr.opcode;
        c.status = status;
        pushCompletion(qp.scq, c);
    }
    while (!qp.rings->recvQ.empty()) {
        RecvWr wr = qp.rings->recvQ.front();
        qp.rings->recvQ.pop_front();
        ++qp.recvConsumed;
        Completion c;
        c.wrId = wr.id;
        c.qp = qp.num;
        c.isSend = false;
        c.status = status;
        pushCompletion(qp.rcq, c);
    }
    qp.postedRecvCount = 0;
    qp.postedRecvBytes = 0;
    qp.recvSeen = qp.recvConsumed;
}

sim::Tick
QpipNic::now()
{
    return curTick();
}

sim::EventHandle
QpipNic::scheduleTimer(sim::Tick delay, std::function<void()> fn)
{
    return scheduleIn(delay, [this, fn = std::move(fn)]() mutable {
        fw_.charge(FwStage::Timer, params_.costs.timerService);
        fn();
    });
}

std::uint32_t
QpipNic::randomIss()
{
    return static_cast<std::uint32_t>(rng().next());
}

const std::string &
QpipNic::inetName() const
{
    return name();
}

void
QpipNic::connectionClosed(inet::TcpConnection &conn)
{
    // The engine already dropped the PCB entry; the QpContext keeps
    // the connection object until the QP is destroyed, so only the
    // ownership record goes away here.
    connOwner_.erase(&conn);
}

sim::Tracer *
QpipNic::tracer()
{
    return &SimObject::tracer();
}

} // namespace qpip::nic
