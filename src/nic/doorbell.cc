#include "nic/doorbell.hh"

namespace qpip::nic {

DoorbellFifo::DoorbellFifo(sim::Simulation &sim, std::string name,
                           std::size_t capacity)
    : SimObject(sim, std::move(name)), capacity_(capacity)
{
    regStat("rings", rings);
    regStat("overflows", overflows);
}

void
DoorbellFifo::ring(const Doorbell &db)
{
    rings.inc();
    scheduleIn(writeLatency, [this, db] {
        if (fifo_.size() >= capacity_) {
            overflows.inc();
            return;
        }
        fifo_.push_back(db);
        if (drainHook_)
            drainHook_();
    });
}

bool
DoorbellFifo::pop(Doorbell &out)
{
    if (fifo_.empty())
        return false;
    out = fifo_.front();
    fifo_.pop_front();
    return true;
}

} // namespace qpip::nic
