#include "nic/doorbell.hh"

namespace qpip::nic {

DoorbellFifo::DoorbellFifo(sim::Simulation &sim, std::string name,
                           std::size_t capacity)
    : SimObject(sim, std::move(name)), capacity_(capacity),
      slots_(capacity)
{
    regStat("rings", rings);
    regStat("overflows", overflows);
    regStat("coalesced", coalesced);
    regStat("batchedWrs", batchedWrs);
}

void
DoorbellFifo::ring(const Doorbell &db)
{
    rings.inc();
    if (db.wrCount > 1)
        batchedWrs.inc(db.wrCount);
    scheduleIn(writeLatency, [this, db] { arrive(db); });
}

void
DoorbellFifo::arrive(const Doorbell &db)
{
    if (coalesceWindow > 0) {
        auto it = foldable_.find(foldKey(db));
        if (it != foldable_.end() && it->second.seq >= headSeq_ &&
            curTick() <= it->second.until) {
            // The queue's newest record is still awaiting the drain
            // FSM: this ring folds into it. No drain hook — the
            // record it joined already triggered one.
            const std::size_t slot =
                (head_ + static_cast<std::size_t>(it->second.seq -
                                                  headSeq_)) %
                capacity_;
            slots_[slot].wrCount += db.wrCount;
            coalesced.inc();
            return;
        }
    }
    if (size_ >= capacity_) {
        overflows.inc();
        return;
    }
    const std::size_t tail = (head_ + size_) % capacity_;
    slots_[tail] = db;
    if (coalesceWindow > 0) {
        foldable_[foldKey(db)] =
            FoldSlot{headSeq_ + size_, curTick() + coalesceWindow};
    }
    ++size_;
    if (drainHook_)
        drainHook_();
}

bool
DoorbellFifo::pop(Doorbell &out)
{
    if (size_ == 0)
        return false;
    out = slots_[head_];
    head_ = (head_ + 1) % capacity_;
    --size_;
    ++headSeq_;
    return true;
}

} // namespace qpip::nic
