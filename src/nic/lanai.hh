/**
 * @file
 * The LANai firmware processor: a serialized 133 MHz resource with
 * per-stage occupancy instrumentation. Every FSM stage of the QPIP
 * NIC executes on it; the per-stage SampleStats regenerate the
 * paper's Tables 2 and 3.
 */

#pragma once

#include <array>
#include <string>
#include <utility>

#include "sim/clock.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace qpip::nic {

/** Pipeline stages, matching the paper's occupancy tables. */
enum class FwStage : std::uint8_t {
    DoorbellProcess,
    Schedule,
    GetWr,
    GetData,
    BuildTcpHdr,
    BuildIpHdr,
    MediaSend,
    UpdateTx,
    MediaRcv,
    IpParse,
    TcpParse,
    UdpParse,
    PutData,
    UpdateRx,
    Checksum,
    Fragment,
    Reassembly,
    RdmaExec,  ///< one-sided op header build/parse/execute/respond
    RudExec,   ///< reliable-datagram shim: seq/ack build, parse, acks
    CtxFetch,  ///< QP context cache miss service (fetch/writeback)
    Mgmt,
    Timer,
    NumStages,
};

const char *fwStageName(FwStage s);

/**
 * Unique identifier per stage for stat paths (fwStageName reuses
 * display names across tx/rx, e.g. "Update").
 */
const char *fwStageTag(FwStage s);

constexpr std::size_t numFwStages =
    static_cast<std::size_t>(FwStage::NumStages);

/**
 * The firmware processor.
 */
class LanaiProcessor : public sim::SimObject
{
  public:
    LanaiProcessor(sim::Simulation &sim, std::string name,
                   std::uint64_t freq_hz);

    /**
     * Occupy the processor for @p cycles attributed to @p stage, then
     * run @p then (which may itself exec further stages). The
     * continuation goes straight into the event queue's pooled record
     * storage — no std::function wrapping.
     */
    template <typename F>
    void
    exec(FwStage stage, sim::Cycles cycles, F &&then)
    {
        charge(stage, cycles);
        schedule(busyUntil_, std::forward<F>(then));
    }

    /** Occupy without a continuation. */
    void charge(FwStage stage, sim::Cycles cycles);

    /**
     * Extend the current stage by raw ticks (e.g. a blocking DMA),
     * attributed to @p stage.
     */
    void chargeTicks(FwStage stage, sim::Tick ticks);

    sim::Tick busyUntil() const { return busyUntil_; }
    sim::Tick busyTotal() const { return busyTicks_.value(); }
    const sim::ClockDomain &clock() const { return clock_; }

    /** Per-stage occupancy samples, in microseconds. */
    const sim::SampleStat &stageStat(FwStage s) const
    {
        return stats_[static_cast<std::size_t>(s)];
    }

    void resetStats();

  private:
    sim::ClockDomain clock_;
    sim::Tick busyUntil_ = 0;
    /** Lifetime busy ticks (not cleared by resetStats). */
    sim::Counter busyTicks_;
    std::array<sim::SampleStat, numFwStages> stats_;
};

} // namespace qpip::nic
