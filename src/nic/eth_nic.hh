/**
 * @file
 * A conventional descriptor-ring NIC for the host-based baselines:
 * the Intel Pro1000 Gigabit adapter (IP/GigE) and the Myrinet LANai
 * running GM as a plain IP link layer (IP/Myrinet). Frames DMA
 * through the adapter with finite staging bandwidth; receive raises a
 * (moderated) interrupt that hands the ring to the host stack.
 */

#pragma once

#include <deque>

#include "host/host_stack.hh"
#include "net/link.hh"
#include "nic/dma.hh"
#include "sim/stats.hh"

namespace qpip::nic {

/** Static NIC parameters. */
struct EthNicParams
{
    std::uint32_t mtu = 1500;
    bool checksumOffload = false;
    DmaConfig dma{264e6, sim::oneUs};
    /** Adapter-side per-packet processing (descriptor handling). */
    sim::Tick perPacketTx = sim::oneUs;
    sim::Tick perPacketRx = sim::oneUs;
    std::size_t rxRingCap = 256;
    /** Interrupt moderation delay after first frame of a burst. */
    sim::Tick intrDelay = 4 * sim::oneUs;
};

/** Pro1000-flavored defaults (1500 B MTU, moderate DMA). */
EthNicParams pro1000Params();

/**
 * GM-as-IP-link defaults: 9000 B MTU; modest effective staging
 * bandwidth because the LANai firmware store-and-forwards every
 * ethernet-emulation frame through SRAM.
 */
EthNicParams gmIpParams();

/**
 * The NIC model.
 */
class EthNic : public sim::SimObject,
               public net::NetReceiver,
               public host::HostNicDriver
{
  public:
    EthNic(sim::Simulation &sim, std::string name, host::HostStack &stack,
           net::Link &link, net::NodeId node, EthNicParams params);

    // --- HostNicDriver ----------------------------------------------
    void transmit(net::PacketPtr pkt) override;
    std::uint32_t mtu() const override { return params_.mtu; }
    net::NodeId nodeId() const override { return node_; }
    bool checksumOffload() const override
    {
        return params_.checksumOffload;
    }

    // --- NetReceiver -------------------------------------------------
    void onPacket(net::PacketPtr pkt) override;

    sim::Counter txPackets;
    sim::Counter rxPackets;
    sim::Counter rxRingDrops;
    sim::Counter interrupts;

  private:
    void raiseInterrupt();
    void serviceRing();

    host::HostStack &stack_;
    net::Link &link_;
    net::NodeId node_;
    EthNicParams params_;
    DmaEngine dma_;
    std::deque<net::PacketPtr> rxRing_;
    bool intrPending_ = false;
};

} // namespace qpip::nic
