/**
 * @file
 * PCI DMA model: a serialized bus resource with a per-transfer setup
 * latency and finite sustained bandwidth. Both host NICs and the QPIP
 * NIC's two LANai DMA engines move every payload byte across one of
 * these; it is what turns the 64-bit/33 MHz PCI bus of the PowerEdge
 * into a first-order term of the throughput results.
 */

#pragma once

#include <functional>

#include "sim/sim_object.hh"

namespace qpip::nic {

/** Parameters of a DMA path. */
struct DmaConfig
{
    /** Sustained bandwidth (bytes/second) across the bus. */
    double bytesPerSec = 200e6;
    /** Fixed setup cost per transfer (descriptor fetch, arbitration). */
    sim::Tick perTransferLatency = 2 * sim::oneUs;
};

/**
 * One serialized DMA resource.
 */
class DmaEngine : public sim::SimObject
{
  public:
    DmaEngine(sim::Simulation &sim, std::string name, DmaConfig config);

    /** Duration a transfer of @p bytes occupies the engine. */
    sim::Tick transferTime(std::size_t bytes) const;

    /**
     * Start a transfer; @p on_done runs at completion. Transfers
     * serialize in submission order.
     */
    void transfer(std::size_t bytes, std::function<void()> on_done);

    /** Account a transfer without a completion callback. */
    sim::Tick charge(std::size_t bytes);

    /**
     * Account a transfer that can start no earlier than @p at (e.g.
     * when the issuing firmware stage begins).
     * @return completion tick.
     */
    sim::Tick chargeAt(sim::Tick at, std::size_t bytes);

    sim::Tick busyUntil() const { return busyUntil_; }
    sim::Tick busyTotal() const { return busyTotal_; }
    const DmaConfig &config() const { return cfg_; }

  private:
    DmaConfig cfg_;
    sim::Tick busyUntil_ = 0;
    sim::Tick busyTotal_ = 0;
};

} // namespace qpip::nic
