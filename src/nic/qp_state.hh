/**
 * @file
 * The host-memory structures shared between the verbs library and the
 * QPIP NIC: work requests, work queues, completion queues and the
 * registered-memory table. In hardware these live in pinned host
 * memory and the NIC reads/writes them with DMA; in the simulation
 * they are ordinary objects, and the DMA *time* is charged by the
 * NIC's Get WR / Put Data / Update stages.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "inet/inet_addr.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace qpip::nic {

using QpNum = std::uint32_t;
using MrKey = std::uint32_t;
using SrqNum = std::uint32_t;

constexpr QpNum invalidQp = 0;
constexpr SrqNum invalidSrq = 0;

/** QP service type. */
enum class QpType : std::uint8_t {
    ReliableTcp,   ///< connected, message-per-TCP-segment
    UnreliableUdp, ///< datagram, message-per-UDP-datagram
    /**
     * Reliable delivery over UDP datagrams: per-peer sequence
     * numbers, cumulative acks and retransmission run in a thin
     * firmware shim whose per-peer state lives in host memory, so one
     * QP context serves any number of peers without growing the NIC's
     * cached QP state.
     */
    ReliableDatagram,
};

/** Completion status codes. */
enum class WcStatus : std::uint8_t {
    Success,
    LengthError,  ///< message larger than the posted receive buffer
    Flushed,      ///< QP torn down with the WR outstanding
    RemoteReset,  ///< connection reset under the WR
    RemoteAccessError, ///< one-sided op refused: rkey/bounds/rights
};

const char *wcStatusName(WcStatus s);

/** Work-request operation (send queue). */
enum class WrOpcode : std::uint8_t {
    Send,      ///< two-sided, consumes a remote receive WR
    RdmaWrite, ///< one-sided write into a remote MR
    RdmaRead,  ///< one-sided read from a remote MR
};

const char *wrOpcodeName(WrOpcode op);

/**
 * Memory-registration access rights, a bitmask. Local access is
 * always granted; remote rights are opt-in at registration time, and
 * one-sided ops against a region lacking them complete in
 * WcStatus::RemoteAccessError on the requester.
 */
using MrAccess = std::uint8_t;
constexpr MrAccess accessLocal = 0x1;
constexpr MrAccess accessRemoteRead = 0x2;
constexpr MrAccess accessRemoteWrite = 0x4;
constexpr MrAccess accessRemoteRw =
    accessRemoteRead | accessRemoteWrite;

/** One scatter/gather element into registered memory. */
struct Sge
{
    MrKey key = 0;
    std::size_t offset = 0;
    std::size_t length = 0;
};

/** A send work request. */
struct SendWr
{
    std::uint64_t id = 0;
    WrOpcode opcode = WrOpcode::Send;
    Sge sge;
    /** Destination for UD QPs (ignored on connected QPs). */
    inet::SockAddr remote;
    /** One-sided ops: byte offset into the remote MR. */
    std::uint64_t raddr = 0;
    /** One-sided ops: the remote MR's key. */
    MrKey rkey = 0;
};

/** A receive work request. */
struct RecvWr
{
    std::uint64_t id = 0;
    Sge sge;
};

/** A completion queue entry. */
struct Completion
{
    std::uint64_t wrId = 0;
    QpNum qp = invalidQp;
    bool isSend = false;
    WrOpcode opcode = WrOpcode::Send;
    WcStatus status = WcStatus::Success;
    std::size_t byteLen = 0;
    /** Source of a UD receive. */
    inet::SockAddr from;
    sim::Tick completedAt = 0;
};

/**
 * The host-memory work queues of one QP.
 */
struct QpHostRings
{
    std::deque<SendWr> sendQ;
    std::deque<RecvWr> recvQ;
};

/**
 * The host-memory ring of a shared receive queue: receive WRs that
 * any attached QP may consume, in post order.
 */
struct SrqHostRing
{
    std::deque<RecvWr> recvQ;
};

/**
 * A completion queue ring in host memory. The NIC pushes entries
 * (paying DMA in its Update stages) and fires the notify hook when
 * the consumer has armed it.
 */
class CqRing
{
  public:
    explicit CqRing(std::size_t capacity = 4096) : capacity_(capacity) {}

    /**
     * Append a completion. With @p defer_notify the armed notify
     * hook is NOT fired — the producer moderates notifications
     * itself and delivers them via notifyNow() (after N CQEs or a
     * timeout). The default is the legacy immediate upcall.
     */
    bool
    push(const Completion &c, bool defer_notify = false)
    {
        if (entries_.size() >= capacity_)
            return false; // CQ overflow: completion lost
        entries_.push_back(c);
        if (!defer_notify && armed_ && notify_) {
            armed_ = false;
            notify_();
        }
        return true;
    }

    /**
     * Fire the armed notify hook now (the moderated-notification
     * delivery point). No-op when not armed or empty.
     */
    void
    notifyNow()
    {
        if (armed_ && notify_ && !entries_.empty()) {
            armed_ = false;
            notify_();
        }
    }

    bool
    pop(Completion &out)
    {
        if (entries_.empty())
            return false;
        out = entries_.front();
        entries_.pop_front();
        return true;
    }

    std::size_t depth() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /** Request a notify() upcall on the next push. */
    void
    arm(std::function<void()> notify)
    {
        notify_ = std::move(notify);
        armed_ = true;
    }

    void disarm() { armed_ = false; }
    bool armed() const { return armed_; }

  private:
    std::size_t capacity_;
    std::deque<Completion> entries_;
    bool armed_ = false;
    std::function<void()> notify_;
};

/**
 * Registered-memory table: the NIC-side shadow of the verbs layer's
 * memory registrations (the paper's "registered memory bindings" and
 * virtual-to-physical translation facility).
 */
class MrTable
{
  public:
    /**
     * Register @p bytes of memory at @p base under a fresh key with
     * the given access rights (local access is always implied).
     */
    MrKey
    registerMemory(std::uint8_t *base, std::size_t bytes,
                   MrAccess access = accessLocal)
    {
        const MrKey key = nextKey_++;
        table_[key] = Region{base, bytes,
                             static_cast<MrAccess>(access | accessLocal)};
        return key;
    }

    void deregister(MrKey key) { table_.erase(key); }

    /**
     * Resolve an SGE to a host pointer, validating bounds and access
     * rights. @return nullptr if the key is unknown, the range is out
     * of bounds, or the region lacks any bit of @p required — the NIC
     * completes such WRs in error.
     */
    std::uint8_t *
    resolve(const Sge &sge, MrAccess required = accessLocal) const
    {
        auto it = table_.find(sge.key);
        if (it == table_.end())
            return nullptr;
        if ((it->second.access & required) != required)
            return nullptr;
        if (sge.offset + sge.length > it->second.bytes)
            return nullptr;
        return it->second.base + sge.offset;
    }

    std::size_t size() const { return table_.size(); }

  private:
    struct Region
    {
        std::uint8_t *base = nullptr;
        std::size_t bytes = 0;
        MrAccess access = accessLocal;
    };

    /** Ordered by key so any future scan is replay-deterministic. */
    std::map<MrKey, Region> table_;
    MrKey nextKey_ = 1;
};

} // namespace qpip::nic
