/**
 * @file
 * The QP context cache: models the LANai's on-board SRAM as a finite
 * home for QP state blocks. The prototype keeps every QP context
 * resident (its workloads use a handful of QPs); at SAN server scale
 * the working set outgrows the SRAM and each touch of a non-resident
 * QP costs a host-memory fetch (and a writeback for the context it
 * displaces — but only a *dirty* one: a context that was merely read
 * since it was fetched can be dropped for free). The cache is a
 * strict LRU over deterministic structures (intrusive list + ordered
 * map, never iterated), so replay and parallel-partition runs see
 * identical hit/miss sequences.
 *
 * Capacity is denominated either in entries (the historical knob) or
 * in bytes: context blocks differ by service type — a connected
 * ReliableTcp QP carries full TCP state while an UnreliableUdp QP is
 * little more than a demux entry — and a byte-capacity cache holds
 * correspondingly more of the small ones. Byte mode may displace
 * several small victims to fit one large block; the Touch result
 * reports every victim so the firmware can charge each writeback.
 *
 * A capacity of zero (in whichever denomination) disables the model
 * entirely: every touch hits and nothing is ever charged, which is
 * also the timing behaviour of a warm cache that never overflows —
 * the paper-config calibration tests assert the two are
 * byte-identical.
 */

#pragma once

#include <cstdint>
#include <list>
#include <map>

#include "nic/qp_state.hh"
#include "sim/stats.hh"

namespace qpip::nic {

/**
 * Host-memory footprint of one QP context block by service type.
 * ReliableTcp carries the full TCP control block; UnreliableUdp is a
 * demux entry plus WR shadows; ReliableDatagram adds only the shim's
 * QP-level bookkeeping — its per-peer state intentionally lives in
 * host memory, outside the cache.
 */
constexpr std::uint32_t
qpContextBytes(QpType t)
{
    switch (t) {
      case QpType::ReliableTcp: return 512;
      case QpType::UnreliableUdp: return 128;
      case QpType::ReliableDatagram: return 192;
    }
    return 512;
}

/** The reference block size the fetch/writeback costs are quoted at. */
constexpr std::uint32_t qpContextRefBytes =
    qpContextBytes(QpType::ReliableTcp);

/**
 * Deterministic LRU set of resident QP contexts.
 */
class QpContextCache
{
  public:
    /** Result of touching (or installing) one QP context. */
    struct Touch
    {
        bool hit = true;
        /** First context displaced to make room (invalidQp if none). */
        QpNum evicted = invalidQp;
        /** Victims displaced (byte mode can displace several). */
        std::uint32_t evictedCount = 0;
        /** Victims that were dirty and owe a writeback. */
        std::uint32_t dirtyEvictions = 0;
        /** Total bytes of dirty victims (writeback DMA size). */
        std::uint64_t writebackBytes = 0;
        /** Bytes fetched from host memory (zero on a hit). */
        std::uint32_t fetchBytes = 0;
    };

    /**
     * @p capacity entries, or — when @p capacity_bytes is non-zero —
     * that many bytes of context storage (the entry count is then
     * ignored).
     */
    explicit QpContextCache(std::size_t capacity,
                            std::size_t capacity_bytes = 0)
        : capacity_(capacity), capacityBytes_(capacity_bytes)
    {}

    bool byteMode() const { return capacityBytes_ > 0; }

    bool
    enabled() const
    {
        return byteMode() || capacity_ > 0;
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t capacityBytes() const { return capacityBytes_; }
    std::size_t size() const { return lru_.size(); }
    std::size_t usedBytes() const { return usedBytes_; }

    /**
     * Reference @p qp's context (any firmware stage that reads or
     * writes QP state). A resident context moves to the MRU position;
     * a non-resident one is fetched (@p bytes big), possibly
     * displacing LRU entries. @p dirty marks the resident copy as
     * modified relative to host memory: only dirty victims pay the
     * writeback when they are later evicted. With the model disabled
     * this is a no-op hit.
     */
    Touch
    touch(QpNum qp, std::uint32_t bytes = qpContextRefBytes,
          bool dirty = true)
    {
        Touch t;
        if (!enabled())
            return t;
        auto it = index_.find(qp);
        if (it != index_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            it->second->dirty = it->second->dirty || dirty;
            hits.inc();
            return t;
        }
        t.hit = false;
        t.fetchBytes = bytes;
        insertMru(qp, bytes, dirty, t);
        misses.inc();
        return t;
    }

    /**
     * Install @p qp at creation time (the management FSM warms the
     * context it just built — dirty by definition: host memory has no
     * copy yet). Unlike touch() this counts nothing but the evictions
     * it may force.
     */
    Touch
    install(QpNum qp, std::uint32_t bytes = qpContextRefBytes)
    {
        Touch t;
        if (!enabled() || index_.count(qp) > 0)
            return t;
        insertMru(qp, bytes, true, t);
        return t;
    }

    /** Drop @p qp on destroy (no writeback — the state is dead). */
    void
    remove(QpNum qp)
    {
        auto it = index_.find(qp);
        if (it == index_.end())
            return;
        usedBytes_ -= it->second->bytes;
        lru_.erase(it->second);
        index_.erase(it);
    }

    bool
    resident(QpNum qp) const
    {
        return !enabled() || index_.count(qp) > 0;
    }

    /** A resident context's dirty bit (false if absent/disabled). */
    bool
    dirty(QpNum qp) const
    {
        auto it = index_.find(qp);
        return it != index_.end() && it->second->dirty;
    }

    sim::Counter hits;
    sim::Counter misses;
    sim::Counter evictions;

  private:
    struct Entry
    {
        QpNum qp = invalidQp;
        std::uint32_t bytes = 0;
        bool dirty = false;
    };

    void
    evictLru(Touch &t)
    {
        const Entry &victim = lru_.back();
        if (t.evicted == invalidQp)
            t.evicted = victim.qp;
        ++t.evictedCount;
        if (victim.dirty) {
            ++t.dirtyEvictions;
            t.writebackBytes += victim.bytes;
        }
        usedBytes_ -= victim.bytes;
        index_.erase(victim.qp);
        lru_.pop_back();
        evictions.inc();
    }

    void
    insertMru(QpNum qp, std::uint32_t bytes, bool dirty, Touch &t)
    {
        if (byteMode()) {
            // A block larger than the whole cache still gets one
            // resident slot (the cache runs transiently over-full by
            // that single entry, like a victim buffer would).
            while (!lru_.empty() &&
                   usedBytes_ + bytes > capacityBytes_) {
                evictLru(t);
            }
        } else if (lru_.size() >= capacity_) {
            evictLru(t);
        }
        lru_.push_front(Entry{qp, bytes, dirty});
        usedBytes_ += bytes;
        index_[qp] = lru_.begin();
    }

    std::size_t capacity_;
    std::size_t capacityBytes_;
    std::size_t usedBytes_ = 0;
    /** MRU at front. */
    std::list<Entry> lru_;
    /** Ordered by QP number; lookup only, never iterated. */
    std::map<QpNum, std::list<Entry>::iterator> index_;
};

} // namespace qpip::nic
