/**
 * @file
 * The QP context cache: models the LANai's on-board SRAM as a finite
 * home for QP state blocks. The prototype keeps every QP context
 * resident (its workloads use a handful of QPs); at SAN server scale
 * the working set outgrows the SRAM and each touch of a non-resident
 * QP costs a host-memory fetch (and a writeback for the context it
 * displaces). The cache is a strict LRU over deterministic structures
 * (intrusive list + ordered map, never iterated), so replay and
 * parallel-partition runs see identical hit/miss sequences.
 *
 * A capacity of zero disables the model entirely: every touch hits
 * and nothing is ever charged, which is also the timing behaviour of
 * a warm cache that never overflows — the paper-config calibration
 * tests assert the two are byte-identical.
 */

#pragma once

#include <cstdint>
#include <list>
#include <map>

#include "nic/qp_state.hh"
#include "sim/stats.hh"

namespace qpip::nic {

/**
 * Deterministic LRU set of resident QP contexts.
 */
class QpContextCache
{
  public:
    /** Result of touching one QP context. */
    struct Touch
    {
        bool hit = true;
        /** Context displaced to make room (invalidQp if none). */
        QpNum evicted = invalidQp;
    };

    explicit QpContextCache(std::size_t capacity)
        : capacity_(capacity)
    {}

    bool enabled() const { return capacity_ > 0; }
    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return lru_.size(); }

    /**
     * Reference @p qp's context (any firmware stage that reads or
     * writes QP state). A resident context moves to the MRU position;
     * a non-resident one is fetched, possibly displacing the LRU
     * entry. With the model disabled this is a no-op hit.
     */
    Touch
    touch(QpNum qp)
    {
        Touch t;
        if (!enabled())
            return t;
        auto it = index_.find(qp);
        if (it != index_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            hits.inc();
            return t;
        }
        t.hit = false;
        t.evicted = insertMru(qp);
        misses.inc();
        if (t.evicted != invalidQp)
            evictions.inc();
        return t;
    }

    /**
     * Install @p qp at creation time (the management FSM warms the
     * context it just built). Unlike touch() this charges nothing and
     * counts nothing but the eviction it may force.
     */
    QpNum
    install(QpNum qp)
    {
        if (!enabled() || index_.count(qp) > 0)
            return invalidQp;
        const QpNum evicted = insertMru(qp);
        if (evicted != invalidQp)
            evictions.inc();
        return evicted;
    }

    /** Drop @p qp on destroy (no writeback — the state is dead). */
    void
    remove(QpNum qp)
    {
        auto it = index_.find(qp);
        if (it == index_.end())
            return;
        lru_.erase(it->second);
        index_.erase(it);
    }

    bool
    resident(QpNum qp) const
    {
        return !enabled() || index_.count(qp) > 0;
    }

    sim::Counter hits;
    sim::Counter misses;
    sim::Counter evictions;

  private:
    QpNum
    insertMru(QpNum qp)
    {
        QpNum evicted = invalidQp;
        if (lru_.size() >= capacity_) {
            evicted = lru_.back();
            index_.erase(evicted);
            lru_.pop_back();
        }
        lru_.push_front(qp);
        index_[qp] = lru_.begin();
        return evicted;
    }

    std::size_t capacity_;
    /** MRU at front. */
    std::list<QpNum> lru_;
    /** Ordered by QP number; lookup only, never iterated. */
    std::map<QpNum, std::list<QpNum>::iterator> index_;
};

} // namespace qpip::nic
