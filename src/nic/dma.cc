#include "nic/dma.hh"

#include <algorithm>
#include <cmath>

namespace qpip::nic {

DmaEngine::DmaEngine(sim::Simulation &sim, std::string name,
                     DmaConfig config)
    : SimObject(sim, std::move(name)), cfg_(config)
{}

sim::Tick
DmaEngine::transferTime(std::size_t bytes) const
{
    const double xfer =
        static_cast<double>(bytes) / cfg_.bytesPerSec * 1e12;
    return cfg_.perTransferLatency +
           static_cast<sim::Tick>(std::llround(xfer));
}

sim::Tick
DmaEngine::charge(std::size_t bytes)
{
    return chargeAt(curTick(), bytes);
}

sim::Tick
DmaEngine::chargeAt(sim::Tick at, std::size_t bytes)
{
    const sim::Tick dur = transferTime(bytes);
    const sim::Tick start = std::max({curTick(), at, busyUntil_});
    busyUntil_ = start + dur;
    busyTotal_ += dur;
    return busyUntil_;
}

void
DmaEngine::transfer(std::size_t bytes, std::function<void()> on_done)
{
    schedule(charge(bytes), std::move(on_done));
}

} // namespace qpip::nic
