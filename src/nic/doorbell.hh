/**
 * @file
 * The doorbell path: user-space posts write a record into a region of
 * PCI address space that the LANai hardware latches into an SRAM FIFO
 * (the "specialized doorbell mechanism" of the prototype's DMA
 * controller). The doorbell FSM drains the FIFO and updates the QP
 * state table with outstanding-WR counts.
 *
 * Two batching mechanisms ride on top of the plain FIFO, both off by
 * default so the paper's per-post discipline is preserved exactly:
 *
 *  - chained posts (verbs postSendList/postRecvList) announce a whole
 *    run of WRs in one record (wrCount > 1) — one PCI posted write
 *    and one doorbell-FSM pass for the entire chain;
 *  - the coalescing window (coalesceWindow ticks, driven by
 *    QpipNicParams::doorbellCoalesceCycles) folds a ring addressed to
 *    a queue that already has an undrained record younger than the
 *    window into that record instead of occupying a new FIFO slot.
 *
 * The FIFO itself is a preallocated ring buffer: ring/pop on the
 * per-post hot path never allocate.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "nic/qp_state.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace qpip::nic {

/** One doorbell record. */
struct Doorbell
{
    /** QP number, or SRQ number when isSrq is set. */
    QpNum qp = invalidQp;
    bool isSend = false;
    /** Addressed to a shared receive queue instead of a QP. */
    bool isSrq = false;
    /**
     * Work requests announced by this record: 1 for a classic
     * per-post ring, the chain length for a chained post, the folded
     * total for a coalesced record. Cost accounting only — the
     * doorbell FSM's host-ring shadows stay authoritative for how
     * many WRs are actually fresh.
     */
    std::uint32_t wrCount = 1;
};

/**
 * The doorbell FIFO.
 */
class DoorbellFifo : public sim::SimObject
{
  public:
    DoorbellFifo(sim::Simulation &sim, std::string name,
                 std::size_t capacity = 1024);

    /**
     * Host-side posted write; arrives at the NIC after the PCI write
     * latency and triggers the drain hook (or folds into a pending
     * record for the same queue inside the coalescing window).
     */
    void ring(const Doorbell &db);

    /** NIC-side pop. @return false when empty. */
    bool pop(Doorbell &out);

    bool empty() const { return size_ == 0; }
    std::size_t depth() const { return size_; }

    /** Invoked (at NIC time) whenever a record lands in the FIFO. */
    void setDrainHook(std::function<void()> hook)
    {
        drainHook_ = std::move(hook);
    }

    /** One-way posted-write latency host -> NIC SRAM. */
    sim::Tick writeLatency = 300 * sim::oneNs;

    /**
     * Non-zero: rings to a queue whose newest record is still queued
     * and younger than this fold into it instead of re-entering the
     * FIFO. Zero (default): every ring occupies its own slot.
     */
    sim::Tick coalesceWindow = 0;

    sim::Counter rings;
    sim::Counter overflows;
    /** Rings folded into a pending record by the coalescing window. */
    sim::Counter coalesced;
    /** WRs announced through multi-WR (chained) ring calls. */
    sim::Counter batchedWrs;

  private:
    /** NIC-side arrival of a posted write. */
    void arrive(const Doorbell &db);

    static std::uint64_t
    foldKey(const Doorbell &db)
    {
        return (std::uint64_t(db.qp) << 2) |
               (std::uint64_t(db.isSend) << 1) |
               std::uint64_t(db.isSrq);
    }

    /** Where a queue's newest record sits, and until when it folds. */
    struct FoldSlot
    {
        std::uint64_t seq = 0;
        sim::Tick until = 0;
    };

    std::size_t capacity_;
    /** Preallocated circular buffer; head_/size_ index into it. */
    std::vector<Doorbell> slots_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    /** Monotonic sequence number of the record at head_. */
    std::uint64_t headSeq_ = 0;
    /** Per-queue newest-record tracker (integer-keyed, never
     *  iterated; stale entries are detected against headSeq_). */
    std::map<std::uint64_t, FoldSlot> foldable_;
    std::function<void()> drainHook_;
};

} // namespace qpip::nic
