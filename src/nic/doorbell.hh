/**
 * @file
 * The doorbell path: user-space posts write a record into a region of
 * PCI address space that the LANai hardware latches into an SRAM FIFO
 * (the "specialized doorbell mechanism" of the prototype's DMA
 * controller). The doorbell FSM drains the FIFO and updates the QP
 * state table with outstanding-WR counts.
 */

#pragma once

#include <deque>
#include <functional>

#include "nic/qp_state.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace qpip::nic {

/** One doorbell record. */
struct Doorbell
{
    /** QP number, or SRQ number when isSrq is set. */
    QpNum qp = invalidQp;
    bool isSend = false;
    /** Addressed to a shared receive queue instead of a QP. */
    bool isSrq = false;
};

/**
 * The doorbell FIFO.
 */
class DoorbellFifo : public sim::SimObject
{
  public:
    DoorbellFifo(sim::Simulation &sim, std::string name,
                 std::size_t capacity = 1024);

    /**
     * Host-side posted write; arrives at the NIC after the PCI write
     * latency and triggers the drain hook.
     */
    void ring(const Doorbell &db);

    /** NIC-side pop. @return false when empty. */
    bool pop(Doorbell &out);

    bool empty() const { return fifo_.empty(); }
    std::size_t depth() const { return fifo_.size(); }

    /** Invoked (at NIC time) whenever a record lands in the FIFO. */
    void setDrainHook(std::function<void()> hook)
    {
        drainHook_ = std::move(hook);
    }

    /** One-way posted-write latency host -> NIC SRAM. */
    sim::Tick writeLatency = 300 * sim::oneNs;

    sim::Counter rings;
    sim::Counter overflows;

  private:
    std::size_t capacity_;
    std::deque<Doorbell> fifo_;
    std::function<void()> drainHook_;
};

} // namespace qpip::nic
