/**
 * @file
 * Shared receive queue: one receive-WR pool feeding many QPs. The
 * ring lives in host memory like a QP's own receive ring; posting
 * rings a dedicated SRQ doorbell, and the NIC consumes WRs from the
 * shared ring in arrival order across all attached QPs. This is the
 * standard verbs answer to per-QP receive-buffer footprint once the
 * QP count grows past what per-connection posting can feed.
 */

#pragma once

#include <memory>
#include <span>

#include "nic/qp_state.hh"
#include "qpip/memory_region.hh"

namespace qpip::nic {
class QpipNic;
} // namespace qpip::nic

namespace qpip::verbs {

class Provider;
struct RecvWrSpec;

/**
 * A shared receive queue.
 */
class SharedReceiveQueue
{
  public:
    SharedReceiveQueue(Provider &provider, std::size_t max_wr);
    ~SharedReceiveQueue();

    SharedReceiveQueue(const SharedReceiveQueue &) = delete;
    SharedReceiveQueue &operator=(const SharedReceiveQueue &) = delete;

    nic::SrqNum num() const { return num_; }

    /**
     * Post a receive WR to the shared ring.
     * @return false if the ring is full.
     */
    bool postRecv(std::uint64_t wr_id, const MemoryRegion &mr,
                  std::size_t offset, std::size_t length);

    /**
     * Post a chain of receive WRs with a single SRQ doorbell ring.
     * All-or-nothing: @return false (posting nothing) if the chain
     * would not fit; an empty chain is a no-op returning true.
     */
    bool postRecvList(std::span<const RecvWrSpec> wrs);

    /** WRs currently posted (host-side view). */
    std::size_t depth() const { return ring_.recvQ.size(); }

  private:
    Provider &provider_;
    nic::QpipNic &nic_;
    /** Expired once the NIC is destroyed (skip teardown calls). */
    std::weak_ptr<void> nicAlive_;
    std::size_t maxWr_;
    nic::SrqHostRing ring_;
    nic::SrqNum num_ = nic::invalidSrq;
};

} // namespace qpip::verbs
