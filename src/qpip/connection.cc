#include "qpip/connection.hh"

#include "qpip/completion_queue.hh"
#include "qpip/provider.hh"

namespace qpip::verbs {

Acceptor::Acceptor(Provider &provider, std::uint16_t port,
                   std::shared_ptr<CompletionQueue> scq,
                   std::shared_ptr<CompletionQueue> rcq)
    : provider_(provider), port_(port), scq_(std::move(scq)),
      rcq_(std::move(rcq))
{}

void
Acceptor::acceptOne(AcceptCb cb, std::size_t max_send_wr,
                    std::size_t max_recv_wr)
{
    acceptOne(std::move(cb),
              QpAttrs{max_send_wr, max_recv_wr, nullptr, 0});
}

void
Acceptor::acceptOne(AcceptCb cb, QpAttrs attrs)
{
    auto qp = provider_.createQp(nic::QpType::ReliableTcp, scq_, rcq_,
                                 std::move(attrs));
    qp->accept(port_, [qp, cb = std::move(cb)] { cb(qp); });
}

} // namespace qpip::verbs
