#include "qpip/memory_region.hh"

#include "qpip/provider.hh"
#include "sim/logging.hh"

namespace qpip::verbs {

MemoryRegion::MemoryRegion(Provider &provider,
                           std::span<std::uint8_t> memory,
                           nic::MrAccess access)
    : provider_(provider), nic_(provider.nic()),
      nicAlive_(provider.nic().lifeToken()), memory_(memory),
      key_(provider.nic().registerMemory(memory.data(), memory.size(),
                                         access))
{}

MemoryRegion::~MemoryRegion()
{
    if (!nicAlive_.expired())
        nic_.deregisterMemory(key_);
}

nic::Sge
MemoryRegion::sge(std::size_t offset, std::size_t length) const
{
    if (offset + length > memory_.size())
        sim::panic("SGE out of region bounds (%zu+%zu > %zu)", offset,
                   length, memory_.size());
    return nic::Sge{key_, offset, length};
}

} // namespace qpip::verbs
