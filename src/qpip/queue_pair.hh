/**
 * @file
 * The queue pair — the logical endpoint of a communication link. Its
 * work queues live in host memory; posting adds a WR and rings the
 * NIC's doorbell. Reliable QPs ride a firmware TCP connection
 * (message-per-segment); unreliable QPs map messages one-to-one onto
 * UDP datagrams.
 */

#pragma once

#include <functional>
#include <memory>

#include "nic/qp_state.hh"
#include "qpip/memory_region.hh"

namespace qpip::nic {
class QpipNic;
} // namespace qpip::nic

namespace qpip::verbs {

class CompletionQueue;
class Provider;

/**
 * One queue pair.
 */
class QueuePair
{
  public:
    using ConnectCb = std::function<void(bool ok)>;

    QueuePair(Provider &provider, nic::QpType type,
              std::shared_ptr<CompletionQueue> scq,
              std::shared_ptr<CompletionQueue> rcq,
              std::size_t max_send_wr, std::size_t max_recv_wr);
    ~QueuePair();

    QueuePair(const QueuePair &) = delete;
    QueuePair &operator=(const QueuePair &) = delete;

    nic::QpNum num() const { return num_; }
    nic::QpType type() const { return type_; }

    /** Bind to a local port (source port / UDP demux). */
    void bind(std::uint16_t port);

    /** Reliable QPs: initiate the TCP rendezvous to @p remote. */
    void connect(const inet::SockAddr &remote, ConnectCb cb);

    /**
     * Reliable QPs: park this idle QP on a monitored port; @p cb
     * fires when a connection is mated to it.
     */
    void accept(std::uint16_t port, std::function<void()> cb);

    /** Graceful disconnect (TCP FIN exchange in the interface). */
    void disconnect();

    /**
     * Post a send WR over [offset, offset+length) of @p mr.
     * @param remote destination, required for unreliable QPs.
     * @return false if the send queue is full.
     */
    bool postSend(std::uint64_t wr_id, const MemoryRegion &mr,
                  std::size_t offset, std::size_t length,
                  const inet::SockAddr &remote = {});

    /**
     * Post a receive WR identifying where an incoming message lands.
     * @return false if the receive queue is full.
     */
    bool postRecv(std::uint64_t wr_id, const MemoryRegion &mr,
                  std::size_t offset, std::size_t length);

    std::size_t sendQueueDepth() const { return rings_.sendQ.size(); }
    std::size_t recvQueueDepth() const { return rings_.recvQ.size(); }

  private:
    Provider &provider_;
    nic::QpipNic &nic_;
    /** Expired once the NIC is destroyed (skip teardown calls). */
    std::weak_ptr<void> nicAlive_;
    nic::QpType type_;
    std::shared_ptr<CompletionQueue> scq_;
    std::shared_ptr<CompletionQueue> rcq_;
    std::size_t maxSendWr_;
    std::size_t maxRecvWr_;
    nic::QpHostRings rings_;
    nic::QpNum num_ = nic::invalidQp;
};

} // namespace qpip::verbs
