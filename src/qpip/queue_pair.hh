/**
 * @file
 * The queue pair — the logical endpoint of a communication link. Its
 * work queues live in host memory; posting adds a WR and rings the
 * NIC's doorbell. Reliable connected QPs ride a firmware TCP
 * connection (message-per-segment); unreliable QPs map messages
 * one-to-one onto UDP datagrams; reliable-datagram QPs add in-order
 * exactly-once delivery over the datagram path (bind a port, then
 * postSend to any number of peers — the NIC's RUD engine sequences,
 * acks and retransmits per peer).
 */

#pragma once

#include <functional>
#include <memory>
#include <span>

#include "nic/qp_state.hh"
#include "qpip/memory_region.hh"

namespace qpip::nic {
class QpipNic;
} // namespace qpip::nic

namespace qpip::verbs {

class CompletionQueue;
class Provider;
class SharedReceiveQueue;

/**
 * Optional QP creation attributes.
 */
struct QpAttrs
{
    std::size_t maxSendWr = 512;
    std::size_t maxRecvWr = 512;
    /**
     * Draw receive WRs from this SRQ instead of a per-QP ring. The QP
     * keeps the SRQ alive; postRecv() on the QP becomes invalid.
     */
    std::shared_ptr<SharedReceiveQueue> srq;
    /**
     * Non-zero enables one-sided RDMA (postWrite/postRead) on this
     * reliable QP and bounds the largest one-sided message. Both ends
     * of a connection must enable it (it changes the wire framing).
     */
    std::uint32_t rdmaWindowBytes = 0;
};

/**
 * One element of a chained send post (postSendList).
 */
struct SendWrSpec
{
    std::uint64_t wrId = 0;
    const MemoryRegion *mr = nullptr;
    std::size_t offset = 0;
    std::size_t length = 0;
    /** Destination for UD/RUD QPs (ignored on connected QPs). */
    inet::SockAddr remote;
};

/**
 * One element of a chained receive post (postRecvList).
 */
struct RecvWrSpec
{
    std::uint64_t wrId = 0;
    const MemoryRegion *mr = nullptr;
    std::size_t offset = 0;
    std::size_t length = 0;
};

/**
 * One queue pair.
 */
class QueuePair
{
  public:
    using ConnectCb = std::function<void(bool ok)>;

    QueuePair(Provider &provider, nic::QpType type,
              std::shared_ptr<CompletionQueue> scq,
              std::shared_ptr<CompletionQueue> rcq, QpAttrs attrs = {});
    QueuePair(Provider &provider, nic::QpType type,
              std::shared_ptr<CompletionQueue> scq,
              std::shared_ptr<CompletionQueue> rcq,
              std::size_t max_send_wr, std::size_t max_recv_wr);
    ~QueuePair();

    QueuePair(const QueuePair &) = delete;
    QueuePair &operator=(const QueuePair &) = delete;

    nic::QpNum num() const { return num_; }
    nic::QpType type() const { return type_; }

    /** Bind to a local port (source port / UDP demux). */
    void bind(std::uint16_t port);

    /** Reliable QPs: initiate the TCP rendezvous to @p remote. */
    void connect(const inet::SockAddr &remote, ConnectCb cb);

    /**
     * Reliable QPs: park this idle QP on a monitored port; @p cb
     * fires when a connection is mated to it.
     */
    void accept(std::uint16_t port, std::function<void()> cb);

    /** Graceful disconnect (TCP FIN exchange in the interface). */
    void disconnect();

    /**
     * Post a send WR over [offset, offset+length) of @p mr.
     * @param remote destination, required for unreliable QPs.
     * @return false if the send queue is full.
     */
    bool postSend(std::uint64_t wr_id, const MemoryRegion &mr,
                  std::size_t offset, std::size_t length,
                  const inet::SockAddr &remote = {});

    /**
     * Post a chain of send WRs with a single doorbell ring: the
     * whole list lands in the host ring, then one batch doorbell
     * (wrCount = chain length) announces it, so the NIC pays one
     * DoorbellProcess pass and one Schedule pass for the run.
     * All-or-nothing: @return false (posting nothing) if the chain
     * would not fit in the send queue; true otherwise. An empty
     * chain is a no-op returning true.
     */
    bool postSendList(std::span<const SendWrSpec> wrs);

    /**
     * Post a receive WR identifying where an incoming message lands.
     * Invalid on a QP attached to an SRQ (post to the SRQ instead).
     * @return false if the receive queue is full.
     */
    bool postRecv(std::uint64_t wr_id, const MemoryRegion &mr,
                  std::size_t offset, std::size_t length);

    /**
     * Post a chain of receive WRs with a single doorbell ring.
     * All-or-nothing like postSendList. Invalid on an SRQ-attached
     * QP (use the SRQ's postRecvList).
     */
    bool postRecvList(std::span<const RecvWrSpec> wrs);

    /**
     * Post a one-sided RDMA Write: push [offset, offset+length) of
     * local @p mr into the peer's region named by (@p rkey, @p raddr).
     * The peer's application is not involved and consumes no receive
     * WR. Requires rdmaWindowBytes on both ends.
     * @return false if the send queue is full.
     */
    bool postWrite(std::uint64_t wr_id, const MemoryRegion &mr,
                   std::size_t offset, std::size_t length,
                   nic::MrKey rkey, std::uint64_t raddr);

    /**
     * Post a one-sided RDMA Read: pull @p length bytes from the
     * peer's (@p rkey, @p raddr) into local @p mr at @p offset.
     * @return false if the send queue is full.
     */
    bool postRead(std::uint64_t wr_id, const MemoryRegion &mr,
                  std::size_t offset, std::size_t length,
                  nic::MrKey rkey, std::uint64_t raddr);

    std::size_t sendQueueDepth() const { return rings_.sendQ.size(); }
    std::size_t recvQueueDepth() const { return rings_.recvQ.size(); }

  private:
    bool postOneSided(std::uint64_t wr_id, nic::WrOpcode opcode,
                      const MemoryRegion &mr, std::size_t offset,
                      std::size_t length, nic::MrKey rkey,
                      std::uint64_t raddr);

    Provider &provider_;
    nic::QpipNic &nic_;
    /** Expired once the NIC is destroyed (skip teardown calls). */
    std::weak_ptr<void> nicAlive_;
    nic::QpType type_;
    std::shared_ptr<CompletionQueue> scq_;
    std::shared_ptr<CompletionQueue> rcq_;
    std::shared_ptr<SharedReceiveQueue> srq_;
    std::size_t maxSendWr_;
    std::size_t maxRecvWr_;
    std::uint32_t rdmaWindow_;
    nic::QpHostRings rings_;
    nic::QpNum num_ = nic::invalidQp;
};

} // namespace qpip::verbs
