/**
 * @file
 * Connection-management helpers over the raw verbs: an Acceptor that
 * keeps a pool of idle QPs parked on a monitored TCP port (the
 * paper's server-side rendezvous: "the server application instructs
 * the interface to monitor a TCP port for incoming connections ...
 * that mates the connection to an idle QP in the server application").
 */

#pragma once

#include <functional>
#include <memory>

#include "qpip/queue_pair.hh"

namespace qpip::verbs {

class Provider;
class CompletionQueue;

/**
 * Server-side rendezvous helper.
 */
class Acceptor
{
  public:
    using AcceptCb = std::function<void(std::shared_ptr<QueuePair>)>;

    /**
     * @param scq,rcq completion queues for accepted QPs.
     */
    Acceptor(Provider &provider, std::uint16_t port,
             std::shared_ptr<CompletionQueue> scq,
             std::shared_ptr<CompletionQueue> rcq);

    /**
     * Park one idle QP on the port; @p cb fires with the connected QP
     * when a client mates to it.
     */
    void acceptOne(AcceptCb cb, std::size_t max_send_wr = 512,
                   std::size_t max_recv_wr = 512);

    /** As above, with full QP attributes (SRQ, RDMA window). */
    void acceptOne(AcceptCb cb, QpAttrs attrs);

    std::uint16_t port() const { return port_; }

  private:
    Provider &provider_;
    std::uint16_t port_;
    std::shared_ptr<CompletionQueue> scq_;
    std::shared_ptr<CompletionQueue> rcq_;
};

} // namespace qpip::verbs
