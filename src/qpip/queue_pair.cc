#include "qpip/queue_pair.hh"

#include "qpip/completion_queue.hh"
#include "qpip/provider.hh"
#include "sim/logging.hh"

namespace qpip::verbs {

QueuePair::QueuePair(Provider &provider, nic::QpType type,
                     std::shared_ptr<CompletionQueue> scq,
                     std::shared_ptr<CompletionQueue> rcq,
                     std::size_t max_send_wr, std::size_t max_recv_wr)
    : provider_(provider), nic_(provider.nic()),
      nicAlive_(provider.nic().lifeToken()), type_(type),
      scq_(std::move(scq)), rcq_(std::move(rcq)),
      maxSendWr_(max_send_wr), maxRecvWr_(max_recv_wr)
{
    num_ = nic_.createQp(
        type_, &rings_, scq_ ? &scq_->ring() : nullptr,
        rcq_ ? &rcq_->ring() : nullptr);
}

QueuePair::~QueuePair()
{
    if (!nicAlive_.expired())
        nic_.destroyQp(num_);
}

void
QueuePair::bind(std::uint16_t port)
{
    provider_.nic().bindLocal(num_, port);
}

void
QueuePair::connect(const inet::SockAddr &remote, ConnectCb cb)
{
    provider_.nic().connect(num_, remote, std::move(cb));
}

void
QueuePair::accept(std::uint16_t port, std::function<void()> cb)
{
    provider_.nic().acceptOn(port, num_,
                             [cb = std::move(cb)](nic::QpNum) {
                                 if (cb)
                                     cb();
                             });
}

void
QueuePair::disconnect()
{
    provider_.nic().disconnect(num_);
}

bool
QueuePair::postSend(std::uint64_t wr_id, const MemoryRegion &mr,
                    std::size_t offset, std::size_t length,
                    const inet::SockAddr &remote)
{
    if (rings_.sendQ.size() >= maxSendWr_)
        return false;
    provider_.host().os().charge(provider_.costs().postSend);
    nic::SendWr wr;
    wr.id = wr_id;
    wr.sge = mr.sge(offset, length);
    wr.remote = remote;
    rings_.sendQ.push_back(wr);
    provider_.nic().postDoorbell(num_, true);
    return true;
}

bool
QueuePair::postRecv(std::uint64_t wr_id, const MemoryRegion &mr,
                    std::size_t offset, std::size_t length)
{
    if (rings_.recvQ.size() >= maxRecvWr_)
        return false;
    provider_.host().os().charge(provider_.costs().postRecv);
    nic::RecvWr wr;
    wr.id = wr_id;
    wr.sge = mr.sge(offset, length);
    rings_.recvQ.push_back(wr);
    provider_.nic().postDoorbell(num_, false);
    return true;
}

} // namespace qpip::verbs
