#include "qpip/queue_pair.hh"

#include "qpip/completion_queue.hh"
#include "qpip/provider.hh"
#include "qpip/srq.hh"
#include "sim/logging.hh"

namespace qpip::verbs {

QueuePair::QueuePair(Provider &provider, nic::QpType type,
                     std::shared_ptr<CompletionQueue> scq,
                     std::shared_ptr<CompletionQueue> rcq,
                     QpAttrs attrs)
    : provider_(provider), nic_(provider.nic()),
      nicAlive_(provider.nic().lifeToken()), type_(type),
      scq_(std::move(scq)), rcq_(std::move(rcq)),
      srq_(std::move(attrs.srq)), maxSendWr_(attrs.maxSendWr),
      maxRecvWr_(attrs.maxRecvWr), rdmaWindow_(attrs.rdmaWindowBytes)
{
    nic::QpCreateAttrs nic_attrs;
    nic_attrs.srq = srq_ ? srq_->num() : nic::invalidSrq;
    nic_attrs.rdmaWindowBytes = rdmaWindow_;
    num_ = nic_.createQp(
        type_, &rings_, scq_ ? &scq_->ring() : nullptr,
        rcq_ ? &rcq_->ring() : nullptr, nic_attrs);
}

QueuePair::QueuePair(Provider &provider, nic::QpType type,
                     std::shared_ptr<CompletionQueue> scq,
                     std::shared_ptr<CompletionQueue> rcq,
                     std::size_t max_send_wr, std::size_t max_recv_wr)
    : QueuePair(provider, type, std::move(scq), std::move(rcq),
                QpAttrs{max_send_wr, max_recv_wr, nullptr, 0})
{}

QueuePair::~QueuePair()
{
    if (!nicAlive_.expired())
        nic_.destroyQp(num_);
}

void
QueuePair::bind(std::uint16_t port)
{
    provider_.nic().bindLocal(num_, port);
}

void
QueuePair::connect(const inet::SockAddr &remote, ConnectCb cb)
{
    provider_.nic().connect(num_, remote, std::move(cb));
}

void
QueuePair::accept(std::uint16_t port, std::function<void()> cb)
{
    provider_.nic().acceptOn(port, num_,
                             [cb = std::move(cb)](nic::QpNum) {
                                 if (cb)
                                     cb();
                             });
}

void
QueuePair::disconnect()
{
    provider_.nic().disconnect(num_);
}

bool
QueuePair::postSend(std::uint64_t wr_id, const MemoryRegion &mr,
                    std::size_t offset, std::size_t length,
                    const inet::SockAddr &remote)
{
    if (rings_.sendQ.size() >= maxSendWr_)
        return false;
    provider_.host().os().charge(provider_.costs().postSend);
    nic::SendWr wr;
    wr.id = wr_id;
    wr.sge = mr.sge(offset, length);
    wr.remote = remote;
    rings_.sendQ.push_back(wr);
    provider_.nic().postDoorbell(num_, true);
    return true;
}

bool
QueuePair::postSendList(std::span<const SendWrSpec> wrs)
{
    if (wrs.empty())
        return true;
    if (rings_.sendQ.size() + wrs.size() > maxSendWr_)
        return false;
    provider_.host().os().charge(
        provider_.costs().postSend +
        provider_.costs().postSendChained *
            static_cast<sim::Cycles>(wrs.size() - 1));
    for (const auto &spec : wrs) {
        nic::SendWr wr;
        wr.id = spec.wrId;
        wr.sge = spec.mr->sge(spec.offset, spec.length);
        wr.remote = spec.remote;
        rings_.sendQ.push_back(wr);
    }
    provider_.nic().postDoorbell(
        num_, true, static_cast<std::uint32_t>(wrs.size()));
    return true;
}

bool
QueuePair::postRecv(std::uint64_t wr_id, const MemoryRegion &mr,
                    std::size_t offset, std::size_t length)
{
    if (srq_)
        sim::panic("qp%u: postRecv on an SRQ-attached QP", num_);
    if (rings_.recvQ.size() >= maxRecvWr_)
        return false;
    provider_.host().os().charge(provider_.costs().postRecv);
    nic::RecvWr wr;
    wr.id = wr_id;
    wr.sge = mr.sge(offset, length);
    rings_.recvQ.push_back(wr);
    provider_.nic().postDoorbell(num_, false);
    return true;
}

bool
QueuePair::postRecvList(std::span<const RecvWrSpec> wrs)
{
    if (srq_)
        sim::panic("qp%u: postRecvList on an SRQ-attached QP", num_);
    if (wrs.empty())
        return true;
    if (rings_.recvQ.size() + wrs.size() > maxRecvWr_)
        return false;
    provider_.host().os().charge(
        provider_.costs().postRecv +
        provider_.costs().postRecvChained *
            static_cast<sim::Cycles>(wrs.size() - 1));
    for (const auto &spec : wrs) {
        nic::RecvWr wr;
        wr.id = spec.wrId;
        wr.sge = spec.mr->sge(spec.offset, spec.length);
        rings_.recvQ.push_back(wr);
    }
    provider_.nic().postDoorbell(
        num_, false, static_cast<std::uint32_t>(wrs.size()));
    return true;
}

bool
QueuePair::postWrite(std::uint64_t wr_id, const MemoryRegion &mr,
                     std::size_t offset, std::size_t length,
                     nic::MrKey rkey, std::uint64_t raddr)
{
    return postOneSided(wr_id, nic::WrOpcode::RdmaWrite, mr, offset,
                        length, rkey, raddr);
}

bool
QueuePair::postRead(std::uint64_t wr_id, const MemoryRegion &mr,
                    std::size_t offset, std::size_t length,
                    nic::MrKey rkey, std::uint64_t raddr)
{
    return postOneSided(wr_id, nic::WrOpcode::RdmaRead, mr, offset,
                        length, rkey, raddr);
}

bool
QueuePair::postOneSided(std::uint64_t wr_id, nic::WrOpcode opcode,
                        const MemoryRegion &mr, std::size_t offset,
                        std::size_t length, nic::MrKey rkey,
                        std::uint64_t raddr)
{
    if (rdmaWindow_ == 0)
        sim::panic("qp%u: one-sided post on a QP without "
                   "rdmaWindowBytes", num_);
    if (rings_.sendQ.size() >= maxSendWr_)
        return false;
    provider_.host().os().charge(provider_.costs().postSend);
    nic::SendWr wr;
    wr.id = wr_id;
    wr.opcode = opcode;
    wr.sge = mr.sge(offset, length);
    wr.raddr = raddr;
    wr.rkey = rkey;
    rings_.sendQ.push_back(wr);
    provider_.nic().postDoorbell(num_, true);
    return true;
}

} // namespace qpip::verbs
