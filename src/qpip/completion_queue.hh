/**
 * @file
 * The completion queue: "the primary mechanism for detecting
 * completions". Poll() spins on the cache-resident ring; Wait() arms
 * an event and pays the interrupt + wakeup when it fires. Multiple
 * QPs may bind their channels to one CQ, giving the application a
 * single monitoring point.
 */

#pragma once

#include <functional>
#include <memory>

#include "nic/qp_state.hh"

namespace qpip::verbs {

class Provider;

using Completion = nic::Completion;
using WcStatus = nic::WcStatus;

/**
 * A completion queue.
 */
class CompletionQueue
{
  public:
    CompletionQueue(Provider &provider, std::size_t cap);

    /**
     * Non-blocking poll.
     * @return true and fill @p out when an entry was present.
     */
    bool poll(Completion &out);

    /**
     * Deliver the next completion to @p cb: immediately (polled) if
     * one is queued, otherwise arm the CQ event and deliver on
     * interrupt. One waiter at a time.
     */
    void wait(std::function<void(Completion)> cb);

    std::size_t depth() const { return ring_.depth(); }
    nic::CqRing &ring() { return ring_; }

  private:
    Provider &provider_;
    nic::CqRing ring_;
    bool waiting_ = false;
};

} // namespace qpip::verbs
