#include "qpip/completion_queue.hh"

#include "qpip/provider.hh"
#include "sim/logging.hh"

namespace qpip::verbs {

CompletionQueue::CompletionQueue(Provider &provider, std::size_t cap)
    : provider_(provider), ring_(cap)
{}

bool
CompletionQueue::poll(Completion &out)
{
    auto &os = provider_.host().os();
    if (ring_.pop(out)) {
        os.charge(provider_.costs().pollCq);
        return true;
    }
    os.charge(provider_.costs().pollCqEmpty);
    return false;
}

void
CompletionQueue::wait(std::function<void(Completion)> cb)
{
    if (waiting_)
        sim::panic("CompletionQueue: overlapping wait");
    Completion c;
    if (poll(c)) {
        cb(c);
        return;
    }
    waiting_ = true;
    auto &os = provider_.host().os();
    os.charge(provider_.costs().waitSetup);
    ring_.arm([this, cb = std::move(cb)]() mutable {
        auto &host_os = provider_.host().os();
        const sim::Cycles wake = provider_.costs().waitWakeup;
        host_os.interrupt([this, cb = std::move(cb), wake]() mutable {
            provider_.host().os().charge(wake);
            waiting_ = false;
            Completion c;
            if (!ring_.pop(c))
                sim::panic("CQ notify without entry");
            cb(c);
        });
    });
}

} // namespace qpip::verbs
