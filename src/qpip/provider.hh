/**
 * @file
 * Provider: the verbs library's device handle. It pairs a host (whose
 * CPU pays the thin user-level costs of posting and polling) with a
 * QPIP NIC (where all protocol processing lives), and exposes the
 * management operations the paper routes through the kernel driver
 * and the NIC's management FSM.
 */

#pragma once

#include <memory>
#include <span>

#include "host/host.hh"
#include "nic/qpip_nic.hh"

namespace qpip::verbs {

class CompletionQueue;
class MemoryRegion;
class QueuePair;
class SharedReceiveQueue;
struct QpAttrs;

/**
 * Host-side verbs costs (cycles at the host clock). Calibrated so
 * that PostSend + Poll for a 1-byte message costs ~1386 cycles
 * (2.5 us at 550 MHz) — the paper's Table 1 QPIP row.
 */
struct VerbsCostModel
{
    sim::Cycles postSend = 900;
    sim::Cycles postRecv = 650;
    /**
     * Per-WR cost inside a chained postSendList/postRecvList: the
     * descriptor write without the per-call doorbell and fencing
     * overhead the singleton verbs pay. Only the chained verbs charge
     * these, so legacy call sites are unaffected.
     */
    sim::Cycles postSendChained = 180;
    sim::Cycles postRecvChained = 130;
    sim::Cycles pollCq = 486;
    /** Empty poll: spinning on a cache-resident CQ. */
    sim::Cycles pollCqEmpty = 60;
    /** Arming a CQ event and blocking (kernel transition). */
    sim::Cycles waitSetup = 1400;
    /** Event delivery: interrupt + wakeup when armed. */
    sim::Cycles waitWakeup = 3200;
    sim::Cycles registerMr = 5200;
};

/**
 * The device/provider handle.
 */
class Provider
{
  public:
    Provider(host::Host &host, nic::QpipNic &nic,
             VerbsCostModel costs = VerbsCostModel{});

    host::Host &host() { return host_; }
    nic::QpipNic &nic() { return nic_; }
    const VerbsCostModel &costs() const { return costs_; }

    /**
     * Register @p memory for DMA. The returned region must not
     * outlive the memory. Remote one-sided access is off unless the
     * corresponding @p access rights are granted at registration.
     */
    std::shared_ptr<MemoryRegion>
    registerMemory(std::span<std::uint8_t> memory,
                   nic::MrAccess access = nic::accessLocal);

    std::shared_ptr<CompletionQueue> createCq(std::size_t cap = 4096);

    /** Create a shared receive queue. */
    std::shared_ptr<SharedReceiveQueue>
    createSrq(std::size_t max_wr = 4096);

    /**
     * Create a QP with its send and receive channels bound to the
     * given CQs (which may be the same object).
     */
    std::shared_ptr<QueuePair>
    createQp(nic::QpType type, std::shared_ptr<CompletionQueue> scq,
             std::shared_ptr<CompletionQueue> rcq,
             std::size_t max_send_wr = 512,
             std::size_t max_recv_wr = 512);

    /** Create a QP with full attributes (SRQ, RDMA window). */
    std::shared_ptr<QueuePair>
    createQp(nic::QpType type, std::shared_ptr<CompletionQueue> scq,
             std::shared_ptr<CompletionQueue> rcq, QpAttrs attrs);

  private:
    host::Host &host_;
    nic::QpipNic &nic_;
    VerbsCostModel costs_;
};

} // namespace qpip::verbs
