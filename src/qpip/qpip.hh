/**
 * @file
 * Umbrella header for the QPIP verbs library — the public API of this
 * reproduction, mirroring the prototype's application software
 * library: "the basic communication methods — PostSend(), PostRecv(),
 * Poll() and Wait() — as well as communication management functions.
 * Internal details of the QP and CQ structures are hidden from the
 * application by the library."
 *
 * Quickstart:
 * @code
 *   qpip::verbs::Provider prov(host, nic);
 *   auto cq  = prov.createCq();
 *   auto qp  = prov.createQp(qpip::nic::QpType::ReliableTcp, cq, cq);
 *   auto mr  = prov.registerMemory(buffer);
 *   qp->postRecv(1, mr, 0, buffer.size());
 *   qp->connect(server, [](bool ok) { ... });
 *   cq->wait([](qpip::verbs::Completion c) { ... });
 * @endcode
 */

#pragma once

#include "qpip/completion_queue.hh"
#include "qpip/connection.hh"
#include "qpip/memory_region.hh"
#include "qpip/provider.hh"
#include "qpip/queue_pair.hh"
#include "qpip/srq.hh"
