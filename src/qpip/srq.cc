#include "qpip/srq.hh"

#include "qpip/provider.hh"
#include "qpip/queue_pair.hh"

namespace qpip::verbs {

SharedReceiveQueue::SharedReceiveQueue(Provider &provider,
                                       std::size_t max_wr)
    : provider_(provider), nic_(provider.nic()),
      nicAlive_(provider.nic().lifeToken()), maxWr_(max_wr),
      num_(provider.nic().createSrq(&ring_))
{}

SharedReceiveQueue::~SharedReceiveQueue()
{
    if (!nicAlive_.expired())
        nic_.destroySrq(num_);
}

bool
SharedReceiveQueue::postRecv(std::uint64_t wr_id,
                             const MemoryRegion &mr,
                             std::size_t offset, std::size_t length)
{
    if (ring_.recvQ.size() >= maxWr_)
        return false;
    provider_.host().os().charge(provider_.costs().postRecv);
    nic::RecvWr wr;
    wr.id = wr_id;
    wr.sge = mr.sge(offset, length);
    ring_.recvQ.push_back(wr);
    provider_.nic().postSrqDoorbell(num_);
    return true;
}

bool
SharedReceiveQueue::postRecvList(std::span<const RecvWrSpec> wrs)
{
    if (wrs.empty())
        return true;
    if (ring_.recvQ.size() + wrs.size() > maxWr_)
        return false;
    provider_.host().os().charge(
        provider_.costs().postRecv +
        provider_.costs().postRecvChained *
            static_cast<sim::Cycles>(wrs.size() - 1));
    for (const auto &spec : wrs) {
        nic::RecvWr wr;
        wr.id = spec.wrId;
        wr.sge = spec.mr->sge(spec.offset, spec.length);
        ring_.recvQ.push_back(wr);
    }
    provider_.nic().postSrqDoorbell(
        num_, static_cast<std::uint32_t>(wrs.size()));
    return true;
}

} // namespace qpip::verbs
