#include "qpip/provider.hh"

#include "qpip/completion_queue.hh"
#include "qpip/memory_region.hh"
#include "qpip/queue_pair.hh"
#include "qpip/srq.hh"

namespace qpip::verbs {

Provider::Provider(host::Host &host, nic::QpipNic &nic,
                   VerbsCostModel costs)
    : host_(host), nic_(nic), costs_(costs)
{}

std::shared_ptr<MemoryRegion>
Provider::registerMemory(std::span<std::uint8_t> memory,
                         nic::MrAccess access)
{
    host_.os().charge(costs_.registerMr);
    return std::make_shared<MemoryRegion>(*this, memory, access);
}

std::shared_ptr<CompletionQueue>
Provider::createCq(std::size_t cap)
{
    return std::make_shared<CompletionQueue>(*this, cap);
}

std::shared_ptr<SharedReceiveQueue>
Provider::createSrq(std::size_t max_wr)
{
    return std::make_shared<SharedReceiveQueue>(*this, max_wr);
}

std::shared_ptr<QueuePair>
Provider::createQp(nic::QpType type,
                   std::shared_ptr<CompletionQueue> scq,
                   std::shared_ptr<CompletionQueue> rcq,
                   std::size_t max_send_wr, std::size_t max_recv_wr)
{
    return std::make_shared<QueuePair>(*this, type, std::move(scq),
                                       std::move(rcq), max_send_wr,
                                       max_recv_wr);
}

std::shared_ptr<QueuePair>
Provider::createQp(nic::QpType type,
                   std::shared_ptr<CompletionQueue> scq,
                   std::shared_ptr<CompletionQueue> rcq, QpAttrs attrs)
{
    return std::make_shared<QueuePair>(*this, type, std::move(scq),
                                       std::move(rcq),
                                       std::move(attrs));
}

} // namespace qpip::verbs
