/**
 * @file
 * RAII memory registration. Registration establishes the NIC-side
 * binding (the prototype's virtual-to-physical translation facility
 * for WR buffers); deregistration tears it down.
 */

#pragma once

#include <memory>
#include <span>

#include "nic/qp_state.hh"

namespace qpip::nic {
class QpipNic;
} // namespace qpip::nic

namespace qpip::verbs {

class Provider;

/**
 * A registered memory region.
 */
class MemoryRegion
{
  public:
    MemoryRegion(Provider &provider, std::span<std::uint8_t> memory,
                 nic::MrAccess access = nic::accessLocal);
    ~MemoryRegion();

    MemoryRegion(const MemoryRegion &) = delete;
    MemoryRegion &operator=(const MemoryRegion &) = delete;

    nic::MrKey key() const { return key_; }
    std::span<std::uint8_t> memory() const { return memory_; }
    std::size_t size() const { return memory_.size(); }

    /** Build an SGE into this region. @pre offset+length <= size() */
    nic::Sge sge(std::size_t offset, std::size_t length) const;

  private:
    Provider &provider_;
    nic::QpipNic &nic_;
    std::weak_ptr<void> nicAlive_;
    std::span<std::uint8_t> memory_;
    nic::MrKey key_;
};

} // namespace qpip::verbs
